//! The event loop: actors, messages, timers, faults.

use crate::SimTime;
use dls_trace::{TraceKind, Tracer};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies an actor within one [`Engine`].
pub type ActorId = usize;

/// Handle to a pending cancellable timer (see [`Ctx::set_cancellable_timer`]).
///
/// Ids are unique for the lifetime of one engine and never reused, so a
/// stale handle can never cancel a timer it does not own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// An event-driven simulated process.
///
/// Actors never block: each callback runs at one instant of virtual time and
/// schedules future work through the [`Ctx`]. This mirrors how SimGrid-MSG
/// processes were used by the paper (request → compute chunk → reply), minus
/// the cooperative-coroutine machinery MSG needed for C.
pub trait Actor<M> {
    /// Called once at simulation start (time zero), in actor-id order.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called when a message addressed to this actor is delivered.
    fn on_message(&mut self, from: ActorId, msg: M, ctx: &mut Ctx<'_, M>);

    /// Called when a timer set by this actor fires.
    fn on_timer(&mut self, _key: u64, _ctx: &mut Ctx<'_, M>) {}
}

/// Metadata describing one in-flight message, shown to the [`Interceptor`]
/// before the delivery event is enqueued.
///
/// The payload itself is *not* exposed: fault decisions must depend only on
/// topology (who talks to whom), timing and the interceptor's own seeded
/// state, which keeps the hook object-safe over any message type and keeps
/// fault plans deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryMeta {
    /// Sending actor.
    pub from: ActorId,
    /// Receiving actor.
    pub to: ActorId,
    /// Virtual time at which the send was issued.
    pub sent_at: SimTime,
    /// Virtual time at which the message would normally arrive.
    pub deliver_at: SimTime,
    /// Sequence number the delivery event will receive (unique, monotone).
    pub seq: u64,
}

/// An [`Interceptor`]'s decision for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver normally at `deliver_at`.
    Deliver,
    /// Silently discard the message (models a lossy link).
    Drop,
    /// Deliver late, at `deliver_at + delay` (models a latency spike).
    Delay(SimTime),
}

/// A pluggable hook consulted for every message send.
///
/// Installed via [`Engine::set_interceptor`]; `dls-faults` implements this
/// to realise loss, partition and latency-spike plans. The engine calls it
/// exactly once per send, in deterministic (command-issue) order, so a
/// seeded interceptor yields bit-identical runs.
pub trait Interceptor {
    /// Decides the fate of one message.
    fn intercept(&mut self, meta: &DeliveryMeta) -> Verdict;
}

enum EventKind<M> {
    Deliver { from: ActorId, to: ActorId, msg: M },
    Timer { actor: ActorId, key: u64, id: Option<TimerId> },
}

/// Heap node for one pending event. The payload ([`EventKind`]) lives in a
/// slab and is addressed by `slot`; only this small fixed-size node moves
/// through heap sifts. Ordering is keyed by `(time, seq)` alone — never by
/// `slot`, which is reused and carries no temporal meaning.
#[derive(Clone, Copy)]
struct EventNode {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for EventNode {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventNode {}
impl PartialOrd for EventNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventNode {
    // Reversed: BinaryHeap is a max-heap, we need earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Free-list slab holding the payloads of pending events.
///
/// `insert` prefers recycled slots, so steady-state runs stop allocating
/// once the high-water mark of simultaneously pending events is reached.
struct EventSlab<M> {
    slots: Vec<Option<EventKind<M>>>,
    free: Vec<u32>,
}

impl<M> EventSlab<M> {
    fn new() -> Self {
        EventSlab { slots: Vec::new(), free: Vec::new() }
    }

    fn insert(&mut self, kind: EventKind<M>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(kind);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
                self.slots.push(Some(kind));
                slot
            }
        }
    }

    /// Removes and returns the payload at `slot`, recycling the slot.
    fn take(&mut self, slot: u32) -> EventKind<M> {
        let kind = self.slots[slot as usize].take().expect("slot must be occupied");
        self.free.push(slot);
        kind
    }

    fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
        self.free.reserve(additional);
    }
}

/// Outstanding cancellations, stored as a sorted vec of monotone timer ids.
///
/// The common case is an empty set (no cancellation issued, or every
/// cancelled timer already reaped), which the engine's pop loop detects
/// with a single `is_empty` check before any lookup. Entries are removed
/// lazily when the matching timer event reaches the head of the queue, so
/// the set never outgrows the number of cancelled-but-still-queued timers.
#[derive(Default)]
struct CancelSet {
    ids: Vec<u64>,
    peak: usize,
}

impl CancelSet {
    #[inline]
    fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn insert(&mut self, id: u64) {
        if let Err(pos) = self.ids.binary_search(&id) {
            self.ids.insert(pos, id);
            self.peak = self.peak.max(self.ids.len());
        }
    }

    /// Removes `id` if present, reporting whether it was.
    fn remove(&mut self, id: u64) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

enum Command<M> {
    Send { to: ActorId, delay: SimTime, msg: M },
    Timer { delay: SimTime, key: u64, id: Option<TimerId> },
    CancelTimer { id: TimerId },
    Kill { victim: ActorId },
    Stop,
}

/// The per-callback handle through which an actor interacts with the engine.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: ActorId,
    num_actors: usize,
    commands: &'a mut Vec<Command<M>>,
    next_timer_id: &'a mut u64,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Schedules `msg` for delivery to `to` after `delay`.
    ///
    /// The delay is the caller-computed transfer time (the network model
    /// lives in `dls-platform`, not in the engine).
    pub fn send(&mut self, to: ActorId, delay: SimTime, msg: M) {
        assert!(to < self.num_actors, "send to unknown actor {to}");
        self.commands.push(Command::Send { to, delay, msg });
    }

    /// Schedules an `on_timer(key)` callback on this actor after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, key: u64) {
        self.commands.push(Command::Timer { delay, key, id: None });
    }

    /// Like [`Ctx::set_timer`], but returns a handle that can later be
    /// passed to [`Ctx::cancel_timer`]. Used for watchdogs that are armed
    /// per outstanding chunk and disarmed when the result arrives.
    pub fn set_cancellable_timer(&mut self, delay: SimTime, key: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.commands.push(Command::Timer { delay, key, id: Some(id) });
        id
    }

    /// Cancels a pending cancellable timer.
    ///
    /// Cancelling a timer that already fired (or was already cancelled) is
    /// a no-op — ids are never reused, so no later timer can be affected.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.commands.push(Command::CancelTimer { id });
    }

    /// Fail-stops `victim` at the current instant.
    ///
    /// The victim's state is left in place (it can be inspected after the
    /// run) but it receives no further callbacks: queued and future
    /// deliveries and timers addressed to it become dead letters, counted
    /// in [`EngineStats::dead_letters`]. Killing an already-dead actor is
    /// a no-op; an actor may kill itself.
    pub fn kill(&mut self, victim: ActorId) {
        assert!(victim < self.num_actors, "kill of unknown actor {victim}");
        self.commands.push(Command::Kill { victim });
    }

    /// Halts the simulation after the current callback returns; queued
    /// events are discarded.
    pub fn stop(&mut self) {
        self.commands.push(Command::Stop);
    }
}

/// Counters describing a finished run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Number of events dispatched.
    pub events: u64,
    /// Largest number of simultaneously pending events.
    pub max_queue: usize,
    /// Virtual time at which the run ended.
    pub end_time: SimTime,
    /// Whether the run ended via [`Ctx::stop`] (vs. queue exhaustion).
    pub stopped: bool,
    /// Messages discarded by the interceptor ([`Verdict::Drop`]).
    pub dropped_sends: u64,
    /// Messages postponed by the interceptor ([`Verdict::Delay`]).
    pub delayed_sends: u64,
    /// Deliveries and timers discarded because the target was killed.
    pub dead_letters: u64,
    /// Largest number of simultaneously outstanding timer cancellations
    /// (cancelled timers whose queue entry had not yet been reaped).
    pub max_cancelled: usize,
}

/// The discrete-event engine: owns actors and the event queue.
pub struct Engine<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    dead: Vec<bool>,
    heap: BinaryHeap<EventNode>,
    slab: EventSlab<M>,
    now: SimTime,
    seq: u64,
    next_timer_id: u64,
    cancelled: CancelSet,
    interceptor: Option<Box<dyn Interceptor>>,
    tracer: Tracer,
    commands: Vec<Command<M>>,
    stats: EngineStats,
}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            actors: Vec::new(),
            dead: Vec::new(),
            heap: BinaryHeap::new(),
            slab: EventSlab::new(),
            now: SimTime::ZERO,
            seq: 0,
            next_timer_id: 0,
            cancelled: CancelSet::default(),
            interceptor: None,
            tracer: Tracer::disabled(),
            commands: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Registers an actor, returning its id (ids are dense, start at 0).
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        self.actors.push(actor);
        self.dead.push(false);
        self.actors.len() - 1
    }

    /// Number of registered actors.
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// Installs the delivery interceptor consulted for every send.
    ///
    /// Without one, every message is delivered (the verdict is always
    /// [`Verdict::Deliver`]) and the event stream is byte-identical to an
    /// engine built before this hook existed.
    pub fn set_interceptor(&mut self, interceptor: Box<dyn Interceptor>) {
        self.interceptor = Some(interceptor);
    }

    /// Attaches a trace sink through its [`Tracer`] handle.
    ///
    /// The engine then emits message-level events (send, deliver, drop,
    /// delay), timer firings, kills and dead letters. A disabled tracer
    /// (the default) costs one branch per hook and constructs nothing, so
    /// untraced runs are bit-identical to an engine built before this hook
    /// existed.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    #[inline]
    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        let slot = self.slab.insert(kind);
        self.heap.push(EventNode { time, seq, slot });
        self.stats.max_queue = self.stats.max_queue.max(self.heap.len());
    }

    fn drain_commands(&mut self, issuer: ActorId) -> bool {
        if self.commands.is_empty() {
            return false;
        }
        if self.interceptor.is_some() {
            return self.drain_commands_intercepted(issuer);
        }
        // No interceptor: every send is delivered as scheduled, so the loop
        // does no metadata work and no verdict dispatch at all.
        let mut stop = false;
        // Swap out to appease the borrow checker without reallocating.
        let mut cmds = std::mem::take(&mut self.commands);
        for cmd in cmds.drain(..) {
            match cmd {
                Command::Send { to, delay, msg } => {
                    let at = self.now.saturating_add(delay);
                    self.tracer.emit_with(|| dls_trace::TraceEvent {
                        at: self.now.as_secs_f64(),
                        kind: TraceKind::MsgSent {
                            from: issuer,
                            to,
                            deliver_at: at.as_secs_f64(),
                            seq: self.seq,
                        },
                    });
                    self.push_event(at, EventKind::Deliver { from: issuer, to, msg });
                }
                Command::Timer { delay, key, id } => {
                    let at = self.now.saturating_add(delay);
                    self.push_event(at, EventKind::Timer { actor: issuer, key, id });
                }
                Command::CancelTimer { id } => {
                    self.cancelled.insert(id.0);
                    self.stats.max_cancelled = self.stats.max_cancelled.max(self.cancelled.peak);
                }
                Command::Kill { victim } => {
                    self.tracer.emit(self.now.as_secs_f64(), TraceKind::ActorKilled { victim });
                    self.dead[victim] = true;
                }
                Command::Stop => stop = true,
            }
        }
        self.commands = cmds;
        stop
    }

    fn drain_commands_intercepted(&mut self, issuer: ActorId) -> bool {
        let mut stop = false;
        let mut cmds = std::mem::take(&mut self.commands);
        let mut interceptor = self.interceptor.take();
        for cmd in cmds.drain(..) {
            match cmd {
                Command::Send { to, delay, msg } => {
                    let at = self.now.saturating_add(delay);
                    let verdict = match interceptor.as_mut() {
                        Some(hook) => hook.intercept(&DeliveryMeta {
                            from: issuer,
                            to,
                            sent_at: self.now,
                            deliver_at: at,
                            seq: self.seq,
                        }),
                        None => Verdict::Deliver,
                    };
                    match verdict {
                        Verdict::Deliver => {
                            self.tracer.emit_with(|| dls_trace::TraceEvent {
                                at: self.now.as_secs_f64(),
                                kind: TraceKind::MsgSent {
                                    from: issuer,
                                    to,
                                    deliver_at: at.as_secs_f64(),
                                    seq: self.seq,
                                },
                            });
                            self.push_event(at, EventKind::Deliver { from: issuer, to, msg });
                        }
                        Verdict::Drop => {
                            self.tracer.emit(
                                self.now.as_secs_f64(),
                                TraceKind::MsgDropped { from: issuer, to },
                            );
                            self.stats.dropped_sends += 1;
                        }
                        Verdict::Delay(extra) => {
                            self.tracer.emit(
                                self.now.as_secs_f64(),
                                TraceKind::MsgDelayed {
                                    from: issuer,
                                    to,
                                    extra: extra.as_secs_f64(),
                                },
                            );
                            self.stats.delayed_sends += 1;
                            let late = at.saturating_add(extra);
                            self.push_event(late, EventKind::Deliver { from: issuer, to, msg });
                        }
                    }
                }
                Command::Timer { delay, key, id } => {
                    let at = self.now.saturating_add(delay);
                    self.push_event(at, EventKind::Timer { actor: issuer, key, id });
                }
                Command::CancelTimer { id } => {
                    self.cancelled.insert(id.0);
                    self.stats.max_cancelled = self.stats.max_cancelled.max(self.cancelled.peak);
                }
                Command::Kill { victim } => {
                    self.tracer.emit(self.now.as_secs_f64(), TraceKind::ActorKilled { victim });
                    self.dead[victim] = true;
                }
                Command::Stop => stop = true,
            }
        }
        self.commands = cmds;
        self.interceptor = interceptor;
        stop
    }

    /// Runs the simulation to completion (empty queue or [`Ctx::stop`]).
    ///
    /// Returns the final statistics. The engine can be inspected but not
    /// re-run afterwards.
    pub fn run(mut self) -> (Vec<Box<dyn Actor<M>>>, EngineStats) {
        let num_actors = self.actors.len();
        // Reserve for the common steady state (one in-flight event per actor
        // plus slack) so the first ramp-up does not reallocate repeatedly.
        let cap = 2 * num_actors + 16;
        self.heap.reserve(cap);
        self.slab.reserve(cap);
        self.commands.reserve(16);
        // Start phase: give every actor a chance to seed the queue.
        for id in 0..num_actors {
            let mut commands = std::mem::take(&mut self.commands);
            let mut tid = self.next_timer_id;
            {
                let mut ctx = Ctx {
                    now: self.now,
                    self_id: id,
                    num_actors,
                    commands: &mut commands,
                    next_timer_id: &mut tid,
                };
                self.actors[id].on_start(&mut ctx);
            }
            self.commands = commands;
            self.next_timer_id = tid;
            if self.drain_commands(id) {
                self.stats.stopped = true;
                self.stats.end_time = self.now;
                return (self.actors, self.stats);
            }
        }

        while let Some(node) = self.heap.pop() {
            debug_assert!(node.time >= self.now, "time must be monotone");
            let kind = self.slab.take(node.slot);
            // Cancelled timers and traffic to killed actors are skipped
            // without advancing the clock or the event counter — a fault-free
            // plan leaves both sets empty, so that path is untouched. The
            // `is_empty` check keeps the common no-cancellation case free of
            // any per-timer lookup.
            match &kind {
                EventKind::Timer { id: Some(id), .. }
                    if !self.cancelled.is_empty() && self.cancelled.remove(id.0) =>
                {
                    continue;
                }
                EventKind::Timer { actor, .. } if self.dead[*actor] => {
                    self.tracer.emit_with(|| dls_trace::TraceEvent {
                        at: node.time.as_secs_f64(),
                        kind: TraceKind::DeadLetter { to: *actor },
                    });
                    self.stats.dead_letters += 1;
                    continue;
                }
                EventKind::Deliver { to, .. } if self.dead[*to] => {
                    self.tracer.emit_with(|| dls_trace::TraceEvent {
                        at: node.time.as_secs_f64(),
                        kind: TraceKind::DeadLetter { to: *to },
                    });
                    self.stats.dead_letters += 1;
                    continue;
                }
                _ => {}
            }
            self.now = node.time;
            self.stats.events += 1;
            let actor_id = match kind {
                EventKind::Deliver { from, to, msg } => {
                    self.tracer.emit_with(|| dls_trace::TraceEvent {
                        at: self.now.as_secs_f64(),
                        kind: TraceKind::MsgDelivered { from, to },
                    });
                    let mut commands = std::mem::take(&mut self.commands);
                    let mut tid = self.next_timer_id;
                    {
                        let mut ctx = Ctx {
                            now: self.now,
                            self_id: to,
                            num_actors,
                            commands: &mut commands,
                            next_timer_id: &mut tid,
                        };
                        self.actors[to].on_message(from, msg, &mut ctx);
                    }
                    self.commands = commands;
                    self.next_timer_id = tid;
                    to
                }
                EventKind::Timer { actor, key, id: _ } => {
                    self.tracer.emit_with(|| dls_trace::TraceEvent {
                        at: self.now.as_secs_f64(),
                        kind: TraceKind::TimerFired { actor, key },
                    });
                    let mut commands = std::mem::take(&mut self.commands);
                    let mut tid = self.next_timer_id;
                    {
                        let mut ctx = Ctx {
                            now: self.now,
                            self_id: actor,
                            num_actors,
                            commands: &mut commands,
                            next_timer_id: &mut tid,
                        };
                        self.actors[actor].on_timer(key, &mut ctx);
                    }
                    self.commands = commands;
                    self.next_timer_id = tid;
                    actor
                }
            };
            if self.drain_commands(actor_id) {
                self.stats.stopped = true;
                break;
            }
        }
        self.stats.end_time = self.now;
        (self.actors, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong: actor 0 sends to 1, 1 replies, N rounds, fixed latency.
    struct Pinger {
        peer: ActorId,
        rounds: u32,
        latency: SimTime,
        done_at: Option<SimTime>,
    }

    impl Actor<u32> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.self_id() == 0 {
                ctx.send(self.peer, self.latency, self.rounds);
            }
        }
        fn on_message(&mut self, from: ActorId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            if msg == 0 {
                self.done_at = Some(ctx.now());
                ctx.stop();
            } else {
                ctx.send(from, self.latency, msg - 1);
            }
        }
    }

    #[test]
    fn ping_pong_timing_is_exact() {
        let lat = SimTime::from_nanos(500);
        let mut eng = Engine::new();
        let a = Box::new(Pinger { peer: 1, rounds: 10, latency: lat, done_at: None });
        let b = Box::new(Pinger { peer: 0, rounds: 10, latency: lat, done_at: None });
        eng.add_actor(a);
        eng.add_actor(b);
        let (_, stats) = eng.run();
        // 11 message hops: initial send with payload 10, then 10 replies
        // decrementing to 0.
        assert_eq!(stats.events, 11);
        assert_eq!(stats.end_time, SimTime::from_nanos(500 * 11));
        assert!(stats.stopped);
    }

    /// Events at the identical timestamp are dispatched in scheduling order.
    struct Recorder {
        log: Vec<u32>,
    }
    impl Actor<u32> for Recorder {
        fn on_message(&mut self, _from: ActorId, msg: u32, _ctx: &mut Ctx<'_, u32>) {
            self.log.push(msg);
        }
    }
    struct Burst;
    impl Actor<u32> for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            for i in 0..16 {
                ctx.send(1, SimTime::from_nanos(1000), i);
            }
        }
        fn on_message(&mut self, _f: ActorId, _m: u32, _c: &mut Ctx<'_, u32>) {}
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut eng = Engine::new();
        eng.add_actor(Box::new(Burst));
        eng.add_actor(Box::new(Recorder { log: vec![] }));
        let (actors, stats) = eng.run();
        assert_eq!(stats.events, 16);
        // Recover the recorder to inspect its log. We know actor 1's type.
        let _ = actors;
    }

    /// Timers fire at the right time with the right key.
    struct TimerUser {
        fired: Vec<(u64, SimTime)>,
    }
    impl Actor<()> for TimerUser {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(SimTime::from_nanos(30), 3);
            ctx.set_timer(SimTime::from_nanos(10), 1);
            ctx.set_timer(SimTime::from_nanos(20), 2);
        }
        fn on_message(&mut self, _f: ActorId, _m: (), _c: &mut Ctx<'_, ()>) {}
        fn on_timer(&mut self, key: u64, ctx: &mut Ctx<'_, ()>) {
            self.fired.push((key, ctx.now()));
        }
    }

    #[test]
    fn timers_fire_in_time_order() {
        let mut eng = Engine::new();
        eng.add_actor(Box::new(TimerUser { fired: vec![] }));
        let (actors, stats) = eng.run();
        assert_eq!(stats.events, 3);
        assert_eq!(stats.end_time, SimTime::from_nanos(30));
        let _ = actors;
    }

    #[test]
    fn empty_engine_terminates_immediately() {
        let eng: Engine<()> = Engine::new();
        let (_, stats) = eng.run();
        assert_eq!(stats.events, 0);
        assert_eq!(stats.end_time, SimTime::ZERO);
        assert!(!stats.stopped);
    }

    #[test]
    #[should_panic(expected = "unknown actor")]
    fn send_to_unknown_actor_panics() {
        struct Bad;
        impl Actor<()> for Bad {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.send(7, SimTime::ZERO, ());
            }
            fn on_message(&mut self, _f: ActorId, _m: (), _c: &mut Ctx<'_, ()>) {}
        }
        let mut eng = Engine::new();
        eng.add_actor(Box::new(Bad));
        let _ = eng.run();
    }

    #[test]
    fn determinism_two_identical_runs() {
        let run = || {
            let lat = SimTime::from_nanos(123);
            let mut eng = Engine::new();
            eng.add_actor(Box::new(Pinger { peer: 1, rounds: 100, latency: lat, done_at: None }));
            eng.add_actor(Box::new(Pinger { peer: 0, rounds: 100, latency: lat, done_at: None }));
            let (_, stats) = eng.run();
            (stats.events, stats.end_time)
        };
        assert_eq!(run(), run());
    }

    /// A cancelled timer never fires; an uncancelled sibling still does.
    struct CancelUser {
        fired: Vec<u64>,
        handle: Option<TimerId>,
    }
    impl Actor<()> for CancelUser {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.handle = Some(ctx.set_cancellable_timer(SimTime::from_nanos(50), 1));
            ctx.set_cancellable_timer(SimTime::from_nanos(80), 2);
            ctx.set_timer(SimTime::from_nanos(10), 0);
        }
        fn on_message(&mut self, _f: ActorId, _m: (), _c: &mut Ctx<'_, ()>) {}
        fn on_timer(&mut self, key: u64, ctx: &mut Ctx<'_, ()>) {
            self.fired.push(key);
            if key == 0 {
                ctx.cancel_timer(self.handle.take().expect("armed in on_start"));
            }
        }
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut eng = Engine::new();
        eng.add_actor(Box::new(CancelUser { fired: vec![], handle: None }));
        let (actors, stats) = eng.run();
        let user = &actors[0];
        let _ = user;
        // Key 1's timer was cancelled at t=10ns; keys 0 and 2 fire.
        assert_eq!(stats.events, 2);
        assert_eq!(stats.end_time, SimTime::from_nanos(80));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        struct LateCancel {
            handle: Option<TimerId>,
        }
        impl Actor<()> for LateCancel {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                self.handle = Some(ctx.set_cancellable_timer(SimTime::from_nanos(10), 1));
                ctx.set_timer(SimTime::from_nanos(20), 2);
            }
            fn on_message(&mut self, _f: ActorId, _m: (), _c: &mut Ctx<'_, ()>) {}
            fn on_timer(&mut self, key: u64, ctx: &mut Ctx<'_, ()>) {
                if key == 2 {
                    // Timer 1 already fired; cancelling its handle is inert.
                    ctx.cancel_timer(self.handle.take().expect("armed"));
                }
            }
        }
        let mut eng = Engine::new();
        eng.add_actor(Box::new(LateCancel { handle: None }));
        let (_, stats) = eng.run();
        assert_eq!(stats.events, 2);
    }

    /// Killing an actor turns its queued and future traffic into dead letters.
    struct Assassin {
        victim: ActorId,
    }
    impl Actor<u32> for Assassin {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            // Two messages racing the kill: one lands before, one after.
            ctx.send(self.victim, SimTime::from_nanos(5), 1);
            ctx.send(self.victim, SimTime::from_nanos(50), 2);
            ctx.set_timer(SimTime::from_nanos(20), 0);
        }
        fn on_message(&mut self, _f: ActorId, _m: u32, _c: &mut Ctx<'_, u32>) {}
        fn on_timer(&mut self, _key: u64, ctx: &mut Ctx<'_, u32>) {
            ctx.kill(self.victim);
        }
    }
    struct Victim {
        got: Vec<u32>,
    }
    impl Actor<u32> for Victim {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            // A timer that would fire after the kill.
            ctx.set_timer(SimTime::from_nanos(100), 9);
        }
        fn on_message(&mut self, _f: ActorId, msg: u32, _c: &mut Ctx<'_, u32>) {
            self.got.push(msg);
        }
        fn on_timer(&mut self, _key: u64, _ctx: &mut Ctx<'_, u32>) {
            panic!("dead actor's timer must not fire");
        }
    }

    #[test]
    fn killed_actor_receives_nothing_further() {
        let mut eng = Engine::new();
        eng.add_actor(Box::new(Assassin { victim: 1 }));
        eng.add_actor(Box::new(Victim { got: vec![] }));
        let (actors, stats) = eng.run();
        // Events: first delivery (t=5), kill timer (t=20). The second
        // delivery and the victim's own timer become dead letters.
        assert_eq!(stats.events, 2);
        assert_eq!(stats.dead_letters, 2);
        assert!(!stats.stopped);
        let _ = actors;
    }

    /// An interceptor that drops every Nth message and delays the rest.
    struct EveryOther {
        n: u64,
        extra: SimTime,
    }
    impl Interceptor for EveryOther {
        fn intercept(&mut self, _meta: &DeliveryMeta) -> Verdict {
            self.n += 1;
            if self.n.is_multiple_of(2) {
                Verdict::Drop
            } else {
                Verdict::Delay(self.extra)
            }
        }
    }

    #[test]
    fn interceptor_drops_and_delays() {
        let mut eng = Engine::new();
        eng.add_actor(Box::new(Burst));
        eng.add_actor(Box::new(Recorder { log: vec![] }));
        eng.set_interceptor(Box::new(EveryOther { n: 0, extra: SimTime::from_nanos(7) }));
        let (_, stats) = eng.run();
        // 16 sends: 8 dropped, 8 delayed-but-delivered.
        assert_eq!(stats.dropped_sends, 8);
        assert_eq!(stats.delayed_sends, 8);
        assert_eq!(stats.events, 8);
        assert_eq!(stats.end_time, SimTime::from_nanos(1007));
    }

    /// No interceptor and a pass-through interceptor produce identical runs.
    struct PassThrough;
    impl Interceptor for PassThrough {
        fn intercept(&mut self, _meta: &DeliveryMeta) -> Verdict {
            Verdict::Deliver
        }
    }

    #[test]
    fn pass_through_interceptor_is_invisible() {
        let run = |hook: bool| {
            let lat = SimTime::from_nanos(123);
            let mut eng = Engine::new();
            eng.add_actor(Box::new(Pinger { peer: 1, rounds: 50, latency: lat, done_at: None }));
            eng.add_actor(Box::new(Pinger { peer: 0, rounds: 50, latency: lat, done_at: None }));
            if hook {
                eng.set_interceptor(Box::new(PassThrough));
            }
            let (_, stats) = eng.run();
            stats
        };
        assert_eq!(run(false), run(true));
    }

    /// The dedicated no-interceptor drain loop must be indistinguishable
    /// from the intercepted loop under a pass-through hook — identical
    /// stats *and* an identical trace stream (same events, same order,
    /// same seq numbers).
    #[test]
    fn no_interceptor_fast_path_is_bit_identical() {
        let run = |hook: bool| {
            let lat = SimTime::from_nanos(123);
            let (tracer, recorder) = Tracer::ring(8192);
            let mut eng = Engine::new();
            eng.add_actor(Box::new(Pinger { peer: 1, rounds: 50, latency: lat, done_at: None }));
            eng.add_actor(Box::new(Pinger { peer: 0, rounds: 50, latency: lat, done_at: None }));
            eng.set_tracer(tracer);
            if hook {
                eng.set_interceptor(Box::new(PassThrough));
            }
            let (_, stats) = eng.run();
            let rec = recorder.borrow();
            assert_eq!(rec.evicted(), 0);
            (stats, rec.to_vec())
        };
        assert_eq!(run(false), run(true));
    }

    /// Timer-churn stress: 10k set/cancel cycles may not grow the cancelled
    /// bookkeeping — every cancellation must be reaped when its (earlier)
    /// watchdog event pops, so the peak stays at one batch.
    #[test]
    fn timer_churn_keeps_cancel_bookkeeping_bounded() {
        struct Churner {
            cycles: u32,
        }
        impl Actor<()> for Churner {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimTime::from_nanos(10), 0);
            }
            fn on_message(&mut self, _f: ActorId, _m: (), _c: &mut Ctx<'_, ()>) {}
            fn on_timer(&mut self, key: u64, ctx: &mut Ctx<'_, ()>) {
                assert_eq!(key, 0, "a cancelled watchdog fired");
                if self.cycles == 0 {
                    return;
                }
                self.cycles -= 1;
                for k in 0..8 {
                    let id = ctx.set_cancellable_timer(SimTime::from_nanos(5), 100 + k);
                    ctx.cancel_timer(id);
                }
                ctx.set_timer(SimTime::from_nanos(10), 0);
            }
        }
        let run = || {
            let mut eng = Engine::new();
            eng.add_actor(Box::new(Churner { cycles: 10_000 }));
            let (_, stats) = eng.run();
            stats
        };
        let stats = run();
        // 80k cancellations total, but never more than one 8-timer batch
        // outstanding: the set is reaped, not monotone.
        assert_eq!(stats.max_cancelled, 8);
        // Only the driving tick timers count as dispatched events.
        assert_eq!(stats.events, 10_001);
        // And the structure is deterministic across identical runs.
        assert_eq!(stats, run());
    }
}

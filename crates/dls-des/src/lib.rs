//! A deterministic discrete-event simulation (DES) engine.
//!
//! This is the workspace's substitute for the SimGrid simulation kernel: a
//! virtual clock, a priority queue of timestamped events, and an actor model
//! for event-driven processes (the master and workers of `dls-msgsim`).
//!
//! Design points:
//!
//! * **Integer virtual time.** [`SimTime`] is a `u64` count of nanoseconds.
//!   Events compare exactly — no floating-point ordering hazards inside the
//!   heap — while conversions to/from `f64` seconds happen only at the API
//!   boundary. One nanosecond resolution spans ~584 simulated years, far
//!   beyond any experiment here (largest makespan ≈ 2.6·10⁵ s).
//! * **Total determinism.** Ties in time are broken by a monotonically
//!   increasing sequence number, so two runs of the same scenario produce
//!   identical schedules, event orders and statistics.
//! * **Chunk-level granularity.** Actors schedule one event per message or
//!   completion, never per task, keeping the event count proportional to the
//!   number of scheduling operations (important at n = 524,288 × 1,000 runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod time;

pub use engine::{
    Actor, ActorId, Ctx, DeliveryMeta, Engine, EngineStats, Interceptor, TimerId, Verdict,
};
pub use time::SimTime;

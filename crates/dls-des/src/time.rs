//! Virtual simulation time as integer nanoseconds.

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic provided (`+`, `-`, saturating/checked variants) is closed
/// over the type. Conversions from `f64` seconds round to the nearest
/// nanosecond and saturate at the representable range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from seconds, rounding to the nearest nanosecond and
    /// saturating on overflow / negative / NaN input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            // NaN, zero and negatives all clamp to zero: durations in this
            // workspace are physically non-negative.
            return SimTime(0);
        }
        let ns = secs * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime(u64::MAX)
        } else {
            SimTime(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in seconds (lossy above 2^53 ns ≈ 104 days; fine for metrics).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime addition overflowed"))
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime subtraction underflowed"))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_seconds() {
        for secs in [0.0, 1.0, 110e-6, 2e-3, 0.5, 1.3e5] {
            let t = SimTime::from_secs_f64(secs);
            assert!((t.as_secs_f64() - secs).abs() < 1e-9, "secs {secs} -> {t}");
        }
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn huge_saturates() {
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a + a, b);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimTime::from_nanos(1)), SimTime::MAX);
        assert_eq!(SimTime::ZERO.saturating_sub(SimTime::from_nanos(1)), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn sub_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }
}

//! Deterministic host-I/O fault injection.
//!
//! The checkpoint journal and every artifact writer in `dls-repro` claim
//! crash consistency: tmp + fsync + rename, bounded retries, torn-tail
//! tolerance. Claims that are only exercised by documentation are worth
//! little — this crate makes the host's failure modes injectable so those
//! paths can be *tested*, in the same spirit as `dls-faults` makes the
//! simulated network's failure modes injectable:
//!
//! * [`HostIo`] — the narrow host-I/O surface the crash-consistent writers
//!   use (create, write, fsync, rename, directory sync, remove);
//! * [`RealIo`] — the passthrough implementation backed by `std::fs`;
//! * [`ChaosIo`] — a fault-injecting wrapper driven by a seeded,
//!   serializable [`HostFaultPlan`]: generic I/O errors, `ENOSPC`, torn
//!   partial writes and transient-then-recover flakes, with sites selected
//!   deterministically by operation index from a [`SplitMix64`] stream —
//!   plus a `crash_at` arming point that simulates a hard crash by failing
//!   one operation mid-effect and rejecting everything after it;
//! * [`RetryPolicy`] — the configurable retry loop (attempts, base delay,
//!   deterministic jitter) with [`is_permanent`] error classification, so
//!   a `NotFound` is never retried while an `Interrupted` flake is.
//!
//! Everything is a pure function of `(plan, operation index, path)`: two
//! runs of the same write sequence under the same plan inject the same
//! faults. That is what lets the `repro chaos` harness enumerate every I/O
//! boundary of a campaign, crash at each one, and assert the resumed
//! output byte-identical to an uninterrupted run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dls_rng::SplitMix64;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Golden-ratio increment used to decorrelate per-index fault streams.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Raw `errno` for "no space left on device" (POSIX `ENOSPC`).
pub const ENOSPC: i32 = 28;

// ---------------------------------------------------------------------------
// The injectable host-I/O surface
// ---------------------------------------------------------------------------

/// An open file handle on the injectable I/O surface.
pub trait HostFile: Send {
    /// Writes the whole buffer (`std::io::Write::write_all` semantics).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Syncs data and metadata to the storage device (`File::sync_all`).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The host-I/O operations the crash-consistent writers perform.
///
/// Implementations must be shareable across campaign worker threads; the
/// journal holds one behind an `Arc`.
pub trait HostIo: Send + Sync + std::fmt::Debug {
    /// Creates (truncating) a file for writing.
    fn create<'a>(&'a self, path: &Path) -> io::Result<Box<dyn HostFile + 'a>>;
    /// Renames `from` over `to` (atomic on POSIX filesystems).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Syncs a directory so a completed rename survives a power cut.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file (tmp-file cleanup on error paths).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The passthrough [`HostIo`]: plain `std::fs`, no fault injection.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

/// [`RealIo`]'s file handle: a plain `std::fs::File`.
#[derive(Debug)]
pub struct RealFile(std::fs::File);

impl HostFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl HostIo for RealIo {
    fn create<'a>(&'a self, path: &Path) -> io::Result<Box<dyn HostFile + 'a>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

/// One kind of host-I/O operation — the unit faults are targeted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// `File::create` of a tmp file.
    Create,
    /// `write_all` of the artifact bytes.
    Write,
    /// `sync_all` of the written file.
    Fsync,
    /// The rename of tmp over the destination.
    Rename,
    /// The parent-directory sync after a rename.
    DirSync,
    /// Tmp-file removal on an error path.
    Remove,
}

impl IoOp {
    /// Every operation kind, in pipeline order.
    pub const ALL: [IoOp; 6] =
        [IoOp::Create, IoOp::Write, IoOp::Fsync, IoOp::Rename, IoOp::DirSync, IoOp::Remove];

    /// Lower-case operation name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            IoOp::Create => "create",
            IoOp::Write => "write",
            IoOp::Fsync => "fsync",
            IoOp::Rename => "rename",
            IoOp::DirSync => "dir-sync",
            IoOp::Remove => "remove",
        }
    }
}

/// A complete, seedable description of the host-I/O faults injected into
/// one run — the `dls-faults` `FaultPlan` idea applied to the filesystem.
///
/// The JSON form is what `repro chaos --host-fault-plan <file>` consumes;
/// all fields default so partial plans parse:
///
/// ```json
/// {
///   "seed": 7,
///   "error_probability": 0.05,
///   "enospc_probability": 0.01,
///   "torn_write_probability": 0.02,
///   "flake_probability": 0.3,
///   "flake_depth": 2,
///   "ops": ["Write", "Fsync"]
/// }
/// ```
///
/// Per operation index `i`, an independent [`SplitMix64`] stream seeded
/// from `(seed, i)` draws the error / `ENOSPC` / torn-write decisions in a
/// fixed order, so the fault sequence is a pure function of the plan and
/// the write sequence. Flakes are keyed by *site* — `(path, op)` with any
/// unique tmp suffix stripped — and fail the first [`flake_depth`] visits
/// to a flaky site before recovering, modelling `EINTR`-style transients
/// that a retry loop must survive.
///
/// [`flake_depth`]: HostFaultPlan::flake_depth
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HostFaultPlan {
    /// Seed for every fault decision stream.
    #[serde(default)]
    pub seed: u64,
    /// Per-operation probability of a generic I/O error.
    #[serde(default)]
    pub error_probability: f64,
    /// Per-operation probability of an `ENOSPC` (disk full) error.
    #[serde(default)]
    pub enospc_probability: f64,
    /// Per-write probability that only a prefix of the buffer lands before
    /// the write errors (a torn write; only meaningful for [`IoOp::Write`]).
    #[serde(default)]
    pub torn_write_probability: f64,
    /// Per-site probability that a `(path, op)` site is flaky.
    #[serde(default)]
    pub flake_probability: f64,
    /// How many visits to a flaky site fail (with `ErrorKind::Interrupted`)
    /// before the site recovers. Must be ≥ 1 when `flake_probability > 0`.
    #[serde(default)]
    pub flake_depth: u32,
    /// Operation kinds the plan applies to; empty means all of them.
    #[serde(default)]
    pub ops: Vec<IoOp>,
}

/// Why a [`HostFaultPlan`] was rejected by [`HostFaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum HostFaultPlanError {
    /// A probability field is not finite or outside `[0, 1]`.
    InvalidProbability {
        /// Field name.
        field: &'static str,
        /// Value as given.
        value: f64,
    },
    /// `flake_probability > 0` but `flake_depth == 0` (flakes would never
    /// fire).
    ZeroFlakeDepth,
}

impl std::fmt::Display for HostFaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostFaultPlanError::InvalidProbability { field, value } => {
                write!(f, "{field} {value} must be finite and in [0, 1]")
            }
            HostFaultPlanError::ZeroFlakeDepth => {
                f.write_str("flake_probability > 0 requires flake_depth >= 1")
            }
        }
    }
}

impl std::error::Error for HostFaultPlanError {}

impl HostFaultPlan {
    /// The empty plan: nothing fails. Running under it must be
    /// byte-identical to running on [`RealIo`] with no fault machinery at
    /// all (pinned by the `repro chaos` harness).
    pub fn none() -> Self {
        HostFaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.error_probability == 0.0
            && self.enospc_probability == 0.0
            && self.torn_write_probability == 0.0
            && self.flake_probability == 0.0
    }

    /// Sets the decision-stream seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the generic-error probability (builder style).
    pub fn with_errors(mut self, probability: f64) -> Self {
        self.error_probability = probability;
        self
    }

    /// Sets the `ENOSPC` probability (builder style).
    pub fn with_enospc(mut self, probability: f64) -> Self {
        self.enospc_probability = probability;
        self
    }

    /// Sets the torn-write probability (builder style).
    pub fn with_torn_writes(mut self, probability: f64) -> Self {
        self.torn_write_probability = probability;
        self
    }

    /// Sets the flaky-site probability and recovery depth (builder style).
    pub fn with_flakes(mut self, probability: f64, depth: u32) -> Self {
        self.flake_probability = probability;
        self.flake_depth = depth;
        self
    }

    /// Restricts the plan to the given operation kinds (builder style).
    pub fn only_ops(mut self, ops: Vec<IoOp>) -> Self {
        self.ops = ops;
        self
    }

    /// Checks every numeric field for plausibility.
    pub fn validate(&self) -> Result<(), HostFaultPlanError> {
        for (field, value) in [
            ("error_probability", self.error_probability),
            ("enospc_probability", self.enospc_probability),
            ("torn_write_probability", self.torn_write_probability),
            ("flake_probability", self.flake_probability),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(HostFaultPlanError::InvalidProbability { field, value });
            }
        }
        if self.flake_probability > 0.0 && self.flake_depth == 0 {
            return Err(HostFaultPlanError::ZeroFlakeDepth);
        }
        Ok(())
    }

    /// Whether the plan's fault kinds apply to operation kind `op`.
    pub fn applies_to(&self, op: IoOp) -> bool {
        self.ops.is_empty() || self.ops.contains(&op)
    }
}

// ---------------------------------------------------------------------------
// ChaosIo
// ---------------------------------------------------------------------------

/// Counters describing what one [`ChaosIo`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Host-I/O operations observed (the crash-point count).
    pub ops: u64,
    /// Generic errors + `ENOSPC` errors injected.
    pub errors_injected: u64,
    /// Torn (partial) writes injected.
    pub torn_writes: u64,
    /// Transient flake failures injected.
    pub flakes: u64,
}

/// What [`ChaosIo::gate`] decided for one operation.
enum Gate {
    /// Perform the operation normally.
    Proceed,
    /// Fail without touching the filesystem.
    Fail(io::Error),
    /// Write only this many bytes, then fail (torn write).
    Torn(usize),
    /// The armed crash point: apply the op's partial effect, then enter
    /// the crashed state.
    Crash,
}

/// A fault-injecting [`HostIo`] driven by a [`HostFaultPlan`].
///
/// Every operation is numbered in call order; the number selects the
/// fault decisions (see [`HostFaultPlan`]) and is what [`with_crash_at`]
/// arms. After the crash point fires, the instance is *crashed*: every
/// further operation fails, exactly as a dead host would behave until the
/// process is restarted. The wrapped inner I/O (normally [`RealIo`]) still
/// performs whatever the plan lets through, so the on-disk state after a
/// simulated crash is the state a real crash would have left.
///
/// [`with_crash_at`]: ChaosIo::with_crash_at
pub struct ChaosIo {
    inner: Box<dyn HostIo>,
    plan: HostFaultPlan,
    crash_at: Option<u64>,
    ops: AtomicU64,
    crashed: AtomicBool,
    errors_injected: AtomicU64,
    torn_writes: AtomicU64,
    flakes: AtomicU64,
    /// Visit counters for flaky `(site path, op)` sites.
    flaky_sites: Mutex<HashMap<(String, IoOp), u32>>,
}

impl std::fmt::Debug for ChaosIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosIo")
            .field("plan", &self.plan)
            .field("crash_at", &self.crash_at)
            .field("ops", &self.ops.load(Ordering::Relaxed))
            .field("crashed", &self.crashed.load(Ordering::Relaxed))
            .finish()
    }
}

/// The flake-site identity of a path: any `.tmp.<pid>.<counter>` unique
/// suffix is stripped to `.tmp`, so every retry of one atomic write hits
/// the *same* site and a flaky site recovers by depth instead of being
/// re-rolled per attempt.
fn site_path(path: &Path) -> String {
    let s = path.to_string_lossy();
    match s.find(".tmp.") {
        Some(i) => s[..i + 4].to_string(),
        None => s.into_owned(),
    }
}

/// FNV-1a over the site key, mixed with the plan seed — the per-site
/// stream selector for flake decisions.
fn site_hash(seed: u64, site: &str, op: IoOp) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in site.bytes().chain([op as u8]) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ seed
}

fn crashed_error() -> io::Error {
    io::Error::other("chaos: simulated host crash — all subsequent I/O fails")
}

impl ChaosIo {
    /// Wraps [`RealIo`] with fault injection per `plan`. The plan is taken
    /// as given — call [`HostFaultPlan::validate`] first for user input.
    pub fn new(plan: HostFaultPlan) -> Self {
        ChaosIo {
            inner: Box::new(RealIo),
            plan,
            crash_at: None,
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            errors_injected: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            flakes: AtomicU64::new(0),
            flaky_sites: Mutex::new(HashMap::new()),
        }
    }

    /// Arms a hard crash at operation index `index` (0-based, builder
    /// style): that operation fails mid-effect and every later one is
    /// rejected, simulating a process death at that I/O boundary.
    pub fn with_crash_at(mut self, index: u64) -> Self {
        self.crash_at = Some(index);
        self
    }

    /// Operations observed so far — on a completed fault-free run, the
    /// number of distinct crash points the write sequence exposes.
    pub fn ops_executed(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the armed crash point has fired.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Injection counters so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            ops: self.ops.load(Ordering::SeqCst),
            errors_injected: self.errors_injected.load(Ordering::SeqCst),
            torn_writes: self.torn_writes.load(Ordering::SeqCst),
            flakes: self.flakes.load(Ordering::SeqCst),
        }
    }

    /// Decides the fate of one operation. Increments the op counter for
    /// live operations; a crashed instance rejects without counting, so
    /// `ops_executed` after a clean run equals the crash-point count.
    fn gate(&self, op: IoOp, path: &Path, write_len: usize) -> Gate {
        if self.crashed.load(Ordering::SeqCst) {
            return Gate::Fail(crashed_error());
        }
        let index = self.ops.fetch_add(1, Ordering::SeqCst);
        if self.crash_at == Some(index) {
            self.crashed.store(true, Ordering::SeqCst);
            return Gate::Crash;
        }
        if !self.plan.applies_to(op) {
            return Gate::Proceed;
        }
        // Flakes first: they are per-site (deterministic across retries of
        // one logical write), while the remaining kinds are per-index.
        if self.plan.flake_probability > 0.0 {
            let site = site_path(path);
            let mut rng = SplitMix64::new(site_hash(self.plan.seed, &site, op));
            if rng.next_f64() < self.plan.flake_probability {
                // A panic while a writer held this lock leaves the visit map
                // intact (plain data, every update is a single insert), so
                // recover the guard instead of cascading the poison into
                // every later operation.
                let mut sites = self.flaky_sites.lock().unwrap_or_else(|e| e.into_inner());
                let visits = sites.entry((site, op)).or_insert(0);
                if *visits < self.plan.flake_depth {
                    *visits += 1;
                    self.flakes.fetch_add(1, Ordering::SeqCst);
                    return Gate::Fail(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("chaos: transient {} flake (attempt {visits})", op.name()),
                    ));
                }
            }
        }
        let mut rng = SplitMix64::new(self.plan.seed ^ index.wrapping_add(1).wrapping_mul(GOLDEN));
        let (u_err, u_enospc, u_torn) = (rng.next_f64(), rng.next_f64(), rng.next_f64());
        if u_err < self.plan.error_probability {
            self.errors_injected.fetch_add(1, Ordering::SeqCst);
            return Gate::Fail(io::Error::other(format!(
                "chaos: injected {} error at op #{index}",
                op.name()
            )));
        }
        if u_enospc < self.plan.enospc_probability {
            self.errors_injected.fetch_add(1, Ordering::SeqCst);
            return Gate::Fail(io::Error::from_raw_os_error(ENOSPC));
        }
        if op == IoOp::Write && u_torn < self.plan.torn_write_probability {
            self.torn_writes.fetch_add(1, Ordering::SeqCst);
            return Gate::Torn((rng.next_f64() * write_len as f64) as usize);
        }
        Gate::Proceed
    }
}

/// [`ChaosIo`]'s file handle: holds the path so write faults can be
/// site-addressed, and defers to the gate per operation.
struct ChaosFile<'a> {
    io: &'a ChaosIo,
    inner: Box<dyn HostFile + 'a>,
    path: PathBuf,
}

impl HostFile for ChaosFile<'_> {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.io.gate(IoOp::Write, &self.path, buf.len()) {
            Gate::Proceed => self.inner.write_all(buf),
            Gate::Fail(e) => Err(e),
            Gate::Torn(prefix) => {
                let _ = self.inner.write_all(&buf[..prefix]);
                Err(io::Error::other(format!(
                    "chaos: torn write ({prefix} of {} bytes landed)",
                    buf.len()
                )))
            }
            Gate::Crash => {
                // A crash mid-write leaves a prefix in the tmp file — the
                // state `atomic_write`'s rename discipline must tolerate.
                let _ = self.inner.write_all(&buf[..buf.len() / 2]);
                Err(crashed_error())
            }
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        match self.io.gate(IoOp::Fsync, &self.path, 0) {
            Gate::Proceed => self.inner.sync_all(),
            Gate::Fail(e) => Err(e),
            // A crash at the fsync boundary: the data may or may not have
            // reached the device; modelling "not synced" (no-op) covers
            // the pessimistic half, and crash-at-rename covers the other.
            Gate::Torn(_) | Gate::Crash => Err(crashed_error()),
        }
    }
}

impl HostIo for ChaosIo {
    fn create<'a>(&'a self, path: &Path) -> io::Result<Box<dyn HostFile + 'a>> {
        match self.gate(IoOp::Create, path, 0) {
            Gate::Proceed => Ok(Box::new(ChaosFile {
                io: self,
                inner: self.inner.create(path)?,
                path: path.to_path_buf(),
            })),
            Gate::Fail(e) => Err(e),
            Gate::Torn(_) => unreachable!("torn faults only target writes"),
            Gate::Crash => {
                // The crash lands after the create syscall: an empty tmp
                // file exists, nothing was written.
                let _ = self.inner.create(path);
                Err(crashed_error())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.gate(IoOp::Rename, to, 0) {
            Gate::Proceed => self.inner.rename(from, to),
            Gate::Fail(e) => Err(e),
            // A crash at the rename boundary: the rename did not happen,
            // the destination still holds its previous content.
            Gate::Torn(_) | Gate::Crash => Err(crashed_error()),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.gate(IoOp::DirSync, dir, 0) {
            Gate::Proceed => self.inner.sync_dir(dir),
            Gate::Fail(e) => Err(e),
            Gate::Torn(_) | Gate::Crash => Err(crashed_error()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.gate(IoOp::Remove, path, 0) {
            Gate::Proceed => self.inner.remove_file(path),
            Gate::Fail(e) => Err(e),
            Gate::Torn(_) | Gate::Crash => Err(crashed_error()),
        }
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// True for errors that retrying cannot fix: the file is missing, access
/// is denied, the argument is malformed, the data is bad — or the disk is
/// full (`ENOSPC`), which a sub-second backoff will not free. Everything
/// else (interrupts, timeouts, `WouldBlock`, unclassified `Other` errors
/// from NFS-style hiccups) is worth the bounded retry.
pub fn is_permanent(e: &io::Error) -> bool {
    if e.raw_os_error() == Some(ENOSPC) {
        return true;
    }
    use std::io::ErrorKind::*;
    matches!(
        e.kind(),
        NotFound | PermissionDenied | InvalidInput | InvalidData | AlreadyExists | Unsupported
    )
}

/// A bounded, classified retry loop for host I/O.
///
/// Replaces the fixed `10 ms · 2^i` loop: attempts, base delay and jitter
/// are configurable, the jitter is deterministic (seeded, so two runs of
/// one campaign sleep identically), and [`is_permanent`] errors bail out
/// immediately instead of burning the full backoff on an error that
/// cannot succeed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts (min 1).
    pub attempts: u32,
    /// Backoff before retry `i` is `base_delay_ms · 2^i`, jittered.
    pub base_delay_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

impl RetryPolicy {
    /// The production policy: 3 attempts, 10 ms base — the same budget the
    /// journal has always used, now with permanent-error classification.
    pub const fn standard() -> Self {
        RetryPolicy { attempts: 3, base_delay_ms: 10, jitter_seed: 0x10_5EED }
    }

    /// A zero-delay policy for tests and the chaos harness, where sleeping
    /// through thousands of injected failures would dominate the runtime.
    pub const fn no_delay(attempts: u32) -> Self {
        RetryPolicy { attempts, base_delay_ms: 0, jitter_seed: 0 }
    }

    /// Hard cap on any single backoff sleep, jitter included (60 s). A
    /// user-supplied `base_delay_ms` can be arbitrarily large; the cap
    /// bounds the worst case instead of letting the exponential scaling
    /// wrap around `u64` into a tiny — or zero — sleep.
    pub const MAX_DELAY_MS: u64 = 60_000;

    /// Overrides the attempt budget (builder style).
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.attempts = attempts;
        self
    }

    /// The backoff before retry `attempt` (0-based): exponential on the
    /// base delay, scaled by a deterministic jitter factor in `[0.5, 1.5)`
    /// so a fleet of workers retrying one shared resource spreads out.
    /// The result is capped at [`RetryPolicy::MAX_DELAY_MS`]: a large
    /// `base_delay_ms` saturates at the cap instead of wrapping the shift.
    pub fn delay(&self, attempt: u32) -> std::time::Duration {
        if self.base_delay_ms == 0 {
            return std::time::Duration::ZERO;
        }
        // 2^min(attempt, 16) never overflows the shift itself, but the
        // scaled product can exceed u64 for a huge base delay — saturate,
        // then clamp to the cap before the jitter touches it.
        let scale = 1u64.checked_shl(attempt.min(16)).unwrap_or(u64::MAX);
        let base_ms = self.base_delay_ms.saturating_mul(scale);
        let base_us = base_ms.min(Self::MAX_DELAY_MS) as f64 * 1_000.0;
        let mut rng = SplitMix64::new(
            self.jitter_seed ^ u64::from(attempt).wrapping_add(1).wrapping_mul(GOLDEN),
        );
        let jitter = 0.5 + rng.next_f64();
        let capped_us = (base_us * jitter).min(Self::MAX_DELAY_MS as f64 * 1_000.0);
        std::time::Duration::from_micros(capped_us as u64)
    }

    /// Runs `op` under this policy: returns the first success, bails
    /// immediately on a [`is_permanent`] error, and otherwise retries with
    /// backoff until the attempt budget is spent.
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let attempts = self.attempts.max(1);
        let mut last = None;
        for i in 0..attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_permanent(&e) => return Err(e),
                Err(e) => last = Some(e),
            }
            if i + 1 < attempts {
                std::thread::sleep(self.delay(i));
            }
        }
        Err(last.expect("at least one attempt was made"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dls-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A minimal atomic-write pipeline over a `HostIo`, mirroring what the
    /// journal does: create tmp, write, fsync, rename, dir-sync.
    fn pipeline(io: &dyn HostIo, path: &Path, contents: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = io.create(&tmp)?;
            f.write_all(contents)?;
            f.sync_all()?;
        }
        io.rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            io.sync_dir(dir)?;
        }
        Ok(())
    }

    #[test]
    fn real_io_round_trips() {
        let dir = tmp_dir("real");
        let path = dir.join("a.txt");
        pipeline(&RealIo, &path, b"hello").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_plan_is_transparent() {
        let dir = tmp_dir("transparent");
        let path = dir.join("a.txt");
        let io = ChaosIo::new(HostFaultPlan::none());
        pipeline(&io, &path, b"payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        // create + write + fsync + rename + dir-sync = 5 boundaries.
        assert_eq!(io.ops_executed(), 5);
        assert_eq!(io.stats(), ChaosStats { ops: 5, ..ChaosStats::default() });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_round_trips_through_json_with_defaults() {
        let plan = HostFaultPlan::none()
            .with_seed(7)
            .with_errors(0.05)
            .with_torn_writes(0.02)
            .with_flakes(0.3, 2)
            .only_ops(vec![IoOp::Write, IoOp::Fsync]);
        let json = serde_json::to_string(&plan.to_value()).unwrap();
        let back = HostFaultPlan::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, plan);
        // Partial plans parse: missing fields default.
        let partial =
            HostFaultPlan::from_value(&serde_json::from_str("{\"seed\": 9}").unwrap()).unwrap();
        assert_eq!(partial.seed, 9);
        assert!(partial.is_none());
        assert!(partial.ops.is_empty());
    }

    #[test]
    fn validate_rejects_bad_probabilities_and_zero_depth() {
        assert!(HostFaultPlan::none().validate().is_ok());
        let bad = HostFaultPlan::none().with_errors(1.5);
        assert!(matches!(
            bad.validate(),
            Err(HostFaultPlanError::InvalidProbability { field: "error_probability", .. })
        ));
        let nan = HostFaultPlan::none().with_enospc(f64::NAN);
        assert!(nan.validate().is_err());
        let flaky = HostFaultPlan::none().with_flakes(0.5, 0);
        assert_eq!(flaky.validate(), Err(HostFaultPlanError::ZeroFlakeDepth));
    }

    #[test]
    fn fault_decisions_are_deterministic() {
        let dir = tmp_dir("det");
        let plan = HostFaultPlan::none().with_seed(11).with_errors(0.5);
        let trial = |tag: &str| {
            let io = ChaosIo::new(plan.clone());
            let mut outcomes = Vec::new();
            for i in 0..20 {
                let path = dir.join(format!("{tag}-{i}.txt"));
                outcomes.push(pipeline(&io, &path, b"x").is_ok());
            }
            outcomes
        };
        assert_eq!(trial("a"), trial("b"), "same plan, same op sequence, same faults");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn op_filter_scopes_faults() {
        let dir = tmp_dir("filter");
        // Everything fails, but only renames are in scope.
        let plan = HostFaultPlan::none().with_errors(1.0).only_ops(vec![IoOp::Rename]);
        let io = ChaosIo::new(plan);
        let path = dir.join("a.txt");
        let err = pipeline(&io, &path, b"x").unwrap_err();
        assert!(err.to_string().contains("rename"), "fault names its op: {err}");
        assert!(!path.exists(), "rename never happened");
        assert!(path.with_extension("tmp").exists(), "tmp landed before the rename fault");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_is_injected_and_classified_permanent() {
        let plan = HostFaultPlan::none().with_enospc(1.0).only_ops(vec![IoOp::Write]);
        let dir = tmp_dir("enospc");
        let io = ChaosIo::new(plan);
        let err = pipeline(&io, &dir.join("a.txt"), b"x").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
        assert!(is_permanent(&err), "a full disk is not retryable at this timescale");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_leaves_a_prefix_in_the_tmp_file() {
        let dir = tmp_dir("torn");
        let plan = HostFaultPlan::none().with_seed(3).with_torn_writes(1.0);
        let io = ChaosIo::new(plan);
        let path = dir.join("a.txt");
        let payload = vec![0xAB; 1000];
        let err = pipeline(&io, &path, &payload).unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let tmp = std::fs::read(path.with_extension("tmp")).unwrap();
        assert!(tmp.len() < payload.len(), "only a prefix landed ({} bytes)", tmp.len());
        assert_eq!(tmp, payload[..tmp.len()], "the prefix is the real data, not garbage");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flaky_sites_recover_by_depth_and_are_tmp_suffix_stable() {
        let dir = tmp_dir("flake");
        let plan = HostFaultPlan::none().with_seed(5).with_flakes(1.0, 2);
        let io = ChaosIo::new(plan);
        // Unique tmp suffixes (as the journal's collision-safe tmp names
        // produce) must hit the same flake site.
        for attempt in 0..3u32 {
            let tmp = dir.join(format!("a.txt.tmp.1234.{attempt}"));
            let res = io.create(&tmp);
            if attempt < 2 {
                let e = res.err().expect("first visits to a flaky site fail");
                assert_eq!(e.kind(), io::ErrorKind::Interrupted);
                assert!(!is_permanent(&e), "flakes must be classified retryable");
            } else {
                res.expect("the site recovers after flake_depth visits");
            }
        }
        assert_eq!(io.stats().flakes, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_point_halts_all_subsequent_io_and_never_tears_the_destination() {
        let dir = tmp_dir("crash");
        let path = dir.join("a.txt");
        pipeline(&RealIo, &path, b"OLD").unwrap();
        // Crash at every boundary of one atomic write; the destination
        // must hold exactly OLD or NEW afterwards, never a mix.
        for k in 0..5 {
            let io = ChaosIo::new(HostFaultPlan::none()).with_crash_at(k);
            let res = pipeline(&io, &path, b"NEW");
            assert!(io.is_crashed(), "crash point {k} must fire");
            let on_disk = std::fs::read(&path).unwrap();
            assert!(
                on_disk == b"OLD" || on_disk == b"NEW",
                "crash at op {k} tore the destination: {on_disk:?}"
            );
            // Post-crash, every operation is rejected.
            let probe = io.create(&dir.join("probe.txt")).err().expect("crashed io rejects");
            assert!(probe.to_string().contains("crash"));
            // "Reboot": plain RealIo completes the write.
            if res.is_err() {
                pipeline(&RealIo, &path, b"NEW").unwrap();
            }
            assert_eq!(std::fs::read(&path).unwrap(), b"NEW");
            pipeline(&RealIo, &path, b"OLD").unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_policy_bails_immediately_on_permanent_errors() {
        let calls = AtomicU32::new(0);
        let err = RetryPolicy::no_delay(5)
            .run(|| -> io::Result<()> {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert_eq!(calls.load(Ordering::Relaxed), 1, "permanent errors must not be retried");

        let calls = AtomicU32::new(0);
        let err = RetryPolicy::no_delay(5)
            .run(|| -> io::Result<()> {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::from_raw_os_error(ENOSPC))
            })
            .unwrap_err();
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
        assert_eq!(calls.load(Ordering::Relaxed), 1, "ENOSPC must not be retried");
    }

    #[test]
    fn retry_policy_retries_transients_within_budget() {
        let failures = AtomicU32::new(2);
        let out = RetryPolicy::no_delay(3)
            .run(|| {
                if failures.fetch_sub(1, Ordering::Relaxed) > 0 {
                    Err(io::Error::new(io::ErrorKind::Interrupted, "flake"))
                } else {
                    Ok(42)
                }
            })
            .unwrap();
        assert_eq!(out, 42);

        let calls = AtomicU32::new(0);
        let err = RetryPolicy::no_delay(2)
            .run(|| -> io::Result<()> {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other("persistent"))
            })
            .unwrap_err();
        assert!(err.to_string().contains("persistent"));
        assert_eq!(calls.load(Ordering::Relaxed), 2, "budget spent on retryable errors");
    }

    #[test]
    fn retry_delays_are_deterministic_and_exponential() {
        let p = RetryPolicy::standard();
        assert_eq!(p.delay(0), p.delay(0), "jitter is seeded, not wall-clock");
        assert!(p.delay(1) > p.delay(0) / 2, "backoff grows (up to jitter)");
        assert_eq!(RetryPolicy::no_delay(3).delay(2), std::time::Duration::ZERO);
        // Jitter factor stays in [0.5, 1.5): bounded around the base.
        for i in 0..5 {
            let base = std::time::Duration::from_millis(10 << i);
            let d = p.delay(i);
            assert!(d >= base / 2 && d < base * 3 / 2, "delay({i}) = {d:?} out of band");
        }
    }

    #[test]
    fn retry_delay_saturates_instead_of_wrapping() {
        let cap = std::time::Duration::from_millis(RetryPolicy::MAX_DELAY_MS);
        // 2^63 ms shifted once used to wrap to exactly zero — the silent
        // busy-retry loop this guards against.
        let huge = RetryPolicy { attempts: 3, base_delay_ms: 1 << 63, jitter_seed: 1 };
        for attempt in [0, 1, 16, 17, u32::MAX] {
            let d = huge.delay(attempt);
            assert!(d > std::time::Duration::ZERO, "delay({attempt}) wrapped to zero");
            assert!(d <= cap, "delay({attempt}) = {d:?} exceeds the cap");
        }
        let max = RetryPolicy { attempts: 3, base_delay_ms: u64::MAX, jitter_seed: 2 };
        assert!(max.delay(5) <= cap && max.delay(5) > std::time::Duration::ZERO);
        // A sane base delay reaching the exponential ceiling also clamps.
        let grown = RetryPolicy { attempts: 20, base_delay_ms: 10_000, jitter_seed: 3 };
        assert!(grown.delay(16) <= cap);
        // The cap never touches the standard policy's band.
        let p = RetryPolicy::standard();
        assert!(p.delay(4) < cap / 100, "standard backoff is far below the cap");
    }

    #[test]
    fn poisoned_flake_site_lock_recovers() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let plan = HostFaultPlan::none().with_flakes(1.0, 1);
        let io = ChaosIo::new(plan);
        // Poison the site map the way a panicking writer thread would:
        // unwind while the guard is alive.
        let poison = catch_unwind(AssertUnwindSafe(|| {
            let _guard = io.flaky_sites.lock().unwrap();
            panic!("writer dies while holding the chaos site lock");
        }));
        assert!(poison.is_err());
        assert!(io.flaky_sites.is_poisoned());
        // The gate still classifies operations: first attempt flakes
        // (depth 1), the retry proceeds — no poison cascade.
        let dir = tmp_dir("poisoned-sites");
        let path = dir.join("a.txt");
        let first = io.create(&path);
        assert!(first.is_err(), "depth-1 flake still fires after recovery");
        let second = io.create(&path);
        assert!(second.is_ok(), "retry proceeds after the flake budget");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Workload models: the "application information" of paper Figure 2.
//!
//! A [`Workload`] declares how many tasks a parallel loop has and how each
//! task's execution time is produced. It covers every distribution used by
//! the paper's two reproduction targets —
//!
//! * the **TSS publication** (Tzen & Ni 1993): constant, random, decreasing
//!   and increasing workloads,
//! * the **BOLD publication** (Hagerup 1997): exponential task times drawn
//!   with `erand48`-family generators,
//!
//! — plus the wider families (normal, gamma, lognormal, weibull, bimodal)
//! used across the DLS literature, and trace-based workloads for replaying
//! recorded applications.
//!
//! Generated task times are materialized as a [`TaskTimes`] vector with
//! prefix sums, so both simulators (`dls-msgsim` and `dls-hagerup`) can share
//! one identical sample per run and charge a chunk of tasks in O(1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod perturb;
mod task_times;

pub use perturb::{Availability, PerturbError, PerturbationModel};
pub use task_times::TaskTimes;

use dls_rng::dist::{
    Bimodal, DistError, Distribution, Exponential, Gamma, LogNormal, Normal, Uniform, Weibull,
};
use dls_rng::{Rand48, UniformSource};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How individual task execution times are produced.
///
/// Times are in **seconds** of simulated work on a unit-speed processing
/// element; platform host speeds scale them at execution time.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum TimeModel {
    /// Every task costs the same (`TSS` publication experiments 1 and 2).
    Constant {
        /// Per-task execution time in seconds.
        time: f64,
    },
    /// Linearly decreasing from `first` (task 0) to `last` (task n-1).
    LinearDecreasing {
        /// Time of the first task.
        first: f64,
        /// Time of the last task.
        last: f64,
    },
    /// Linearly increasing from `first` (task 0) to `last` (task n-1).
    LinearIncreasing {
        /// Time of the first task.
        first: f64,
        /// Time of the last task.
        last: f64,
    },
    /// Uniform random in `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean (BOLD publication, µ = 1 s).
    Exponential {
        /// Mean task time µ.
        mean: f64,
    },
    /// Normal, truncated at zero.
    Normal {
        /// Mean task time µ.
        mean: f64,
        /// Standard deviation σ.
        std: f64,
    },
    /// Gamma with shape/scale.
    Gamma {
        /// Shape parameter k.
        shape: f64,
        /// Scale parameter θ.
        scale: f64,
    },
    /// Lognormal with a target mean and standard deviation.
    LogNormal {
        /// Target mean of the task times.
        mean: f64,
        /// Target standard deviation of the task times.
        std: f64,
    },
    /// Weibull with shape/scale.
    Weibull {
        /// Shape parameter k.
        shape: f64,
        /// Scale parameter λ.
        scale: f64,
    },
    /// Two-point mixture: `a` with probability `p_a`, else `b`.
    Bimodal {
        /// Cheap-task time.
        a: f64,
        /// Expensive-task time.
        b: f64,
        /// Probability of the cheap task.
        p_a: f64,
    },
    /// Replay of recorded per-task times (profiling trace).
    Trace {
        /// Recorded task times, cycled if shorter than `n`.
        #[serde(skip)]
        times: Arc<Vec<f64>>,
    },
}

/// Errors from building or generating a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The workload has zero tasks.
    NoTasks,
    /// A task time parameter is invalid (negative, NaN, ...).
    BadTime(&'static str),
    /// The underlying distribution rejected its parameters.
    Dist(DistError),
    /// A trace workload was given an empty trace.
    EmptyTrace,
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::NoTasks => write!(f, "workload must contain at least one task"),
            WorkloadError::BadTime(what) => write!(f, "invalid task time parameter: {what}"),
            WorkloadError::Dist(e) => write!(f, "distribution parameter error: {e}"),
            WorkloadError::EmptyTrace => write!(f, "trace workload has no recorded times"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<DistError> for WorkloadError {
    fn from(e: DistError) -> Self {
        WorkloadError::Dist(e)
    }
}

/// A parallel loop's workload: task count plus per-task time model.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Workload {
    n: u64,
    model: TimeModel,
}

impl Workload {
    /// Creates a workload after validating the model parameters.
    pub fn new(n: u64, model: TimeModel) -> Result<Self, WorkloadError> {
        if n == 0 {
            return Err(WorkloadError::NoTasks);
        }
        match &model {
            TimeModel::Constant { time } => {
                if !time.is_finite() || *time < 0.0 {
                    return Err(WorkloadError::BadTime("constant time must be >= 0"));
                }
            }
            TimeModel::LinearDecreasing { first, last }
            | TimeModel::LinearIncreasing { first, last } => {
                if !first.is_finite() || !last.is_finite() || *first < 0.0 || *last < 0.0 {
                    return Err(WorkloadError::BadTime("linear endpoints must be >= 0"));
                }
            }
            TimeModel::Uniform { lo, hi } => {
                Uniform::new(*lo, *hi)?;
                if *lo < 0.0 {
                    return Err(WorkloadError::BadTime("uniform lower bound must be >= 0"));
                }
            }
            TimeModel::Exponential { mean } => {
                Exponential::new(*mean)?;
            }
            TimeModel::Normal { mean, std } => {
                Normal::new(*mean, *std)?;
            }
            TimeModel::Gamma { shape, scale } => {
                Gamma::new(*shape, *scale)?;
            }
            TimeModel::LogNormal { mean, std } => {
                LogNormal::from_mean_std(*mean, *std)?;
            }
            TimeModel::Weibull { shape, scale } => {
                Weibull::new(*shape, *scale)?;
            }
            TimeModel::Bimodal { a, b, p_a } => {
                Bimodal::new(*a, *b, *p_a)?;
                if *a < 0.0 || *b < 0.0 {
                    return Err(WorkloadError::BadTime("bimodal values must be >= 0"));
                }
            }
            TimeModel::Trace { times } => {
                if times.is_empty() {
                    return Err(WorkloadError::EmptyTrace);
                }
                if times.iter().any(|t| !t.is_finite() || *t < 0.0) {
                    return Err(WorkloadError::BadTime("trace entries must be finite and >= 0"));
                }
            }
        }
        Ok(Workload { n, model })
    }

    /// Constant workload helper (`n` tasks of `time` seconds each).
    pub fn constant(n: u64, time: f64) -> Self {
        Workload::new(n, TimeModel::Constant { time }).expect("valid constant workload")
    }

    /// Exponential workload helper (BOLD publication parameters).
    pub fn exponential(n: u64, mean: f64) -> Result<Self, WorkloadError> {
        Workload::new(n, TimeModel::Exponential { mean })
    }

    /// Builds a trace workload from recorded per-task times.
    ///
    /// The paper's §III requires "a trace file or similar information
    /// describing the behavior of the measured application" to reproduce
    /// real-application experiments; this is that ingestion point. The
    /// trace is replayed for `n` tasks (cycled if shorter).
    pub fn from_trace(n: u64, times: Vec<f64>) -> Result<Self, WorkloadError> {
        Workload::new(n, TimeModel::Trace { times: Arc::new(times) })
    }

    /// Parses a whitespace/newline-separated trace of per-task times in
    /// seconds (comments starting with `#` are ignored) and replays it for
    /// exactly as many tasks as the trace holds.
    pub fn from_trace_text(text: &str) -> Result<Self, WorkloadError> {
        let mut times = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("");
            for tok in line.split_whitespace() {
                let v: f64 = tok
                    .parse()
                    .map_err(|_| WorkloadError::BadTime("trace entries must be numbers"))?;
                times.push(v);
            }
        }
        if times.is_empty() {
            return Err(WorkloadError::EmptyTrace);
        }
        let n = times.len() as u64;
        Self::from_trace(n, times)
    }

    /// Task count `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The per-task time model.
    pub fn model(&self) -> &TimeModel {
        &self.model
    }

    /// Whether the model is stochastic (needs a seed to be reproducible).
    pub fn is_stochastic(&self) -> bool {
        matches!(
            self.model,
            TimeModel::Uniform { .. }
                | TimeModel::Exponential { .. }
                | TimeModel::Normal { .. }
                | TimeModel::Gamma { .. }
                | TimeModel::LogNormal { .. }
                | TimeModel::Weibull { .. }
                | TimeModel::Bimodal { .. }
        )
    }

    /// Analytic mean µ of the task execution time.
    ///
    /// This is the µ handed to DLS techniques that require it (Table II);
    /// the techniques never see the sampled values in advance.
    pub fn mean(&self) -> f64 {
        match &self.model {
            TimeModel::Constant { time } => *time,
            TimeModel::LinearDecreasing { first, last }
            | TimeModel::LinearIncreasing { first, last } => 0.5 * (first + last),
            TimeModel::Uniform { lo, hi } => Uniform::new(*lo, *hi).expect("validated").mean(),
            TimeModel::Exponential { mean } => *mean,
            TimeModel::Normal { mean, .. } => *mean,
            TimeModel::Gamma { shape, scale } => shape * scale,
            TimeModel::LogNormal { mean, .. } => *mean,
            TimeModel::Weibull { shape, scale } => {
                Weibull::new(*shape, *scale).expect("validated").mean()
            }
            TimeModel::Bimodal { a, b, p_a } => {
                Bimodal::new(*a, *b, *p_a).expect("validated").mean()
            }
            TimeModel::Trace { times } => times.iter().sum::<f64>() / times.len() as f64,
        }
    }

    /// Analytic standard deviation σ of the task execution time.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Analytic variance σ² of the task execution time.
    pub fn variance(&self) -> f64 {
        match &self.model {
            TimeModel::Constant { .. } => 0.0,
            // A linear ramp over n tasks is (as n → ∞) uniform on
            // [min(first,last), max(first,last)].
            TimeModel::LinearDecreasing { first, last }
            | TimeModel::LinearIncreasing { first, last } => {
                let w = (first - last).abs();
                w * w / 12.0
            }
            TimeModel::Uniform { lo, hi } => Uniform::new(*lo, *hi).expect("validated").variance(),
            TimeModel::Exponential { mean } => mean * mean,
            TimeModel::Normal { std, .. } => std * std,
            TimeModel::Gamma { shape, scale } => shape * scale * scale,
            TimeModel::LogNormal { std, .. } => std * std,
            TimeModel::Weibull { shape, scale } => {
                Weibull::new(*shape, *scale).expect("validated").variance()
            }
            TimeModel::Bimodal { a, b, p_a } => {
                Bimodal::new(*a, *b, *p_a).expect("validated").variance()
            }
            TimeModel::Trace { times } => {
                let m = self.mean();
                times.iter().map(|t| (t - m) * (t - m)).sum::<f64>() / times.len() as f64
            }
        }
    }

    /// Materializes one sample of per-task times using the `erand48`-family
    /// stream seeded with `seed` (stochastic models only; deterministic
    /// models ignore the seed).
    pub fn generate(&self, seed: u64) -> TaskTimes {
        let mut rng = Rand48::from_seed(seed);
        self.generate_with(&mut rng)
    }

    /// Materializes one sample using a caller-supplied uniform source.
    pub fn generate_with<U: UniformSource>(&self, rng: &mut U) -> TaskTimes {
        let n = self.n as usize;
        let mut times = task_times::zeroed_arc(n);
        let mut prefix = task_times::zeroed_arc(n + 1);
        let t = Arc::get_mut(&mut times).expect("freshly allocated");
        self.fill_times(rng, t);
        task_times::fill_prefix(t, Arc::get_mut(&mut prefix).expect("freshly allocated"));
        TaskTimes::from_parts(times, prefix)
    }

    /// Like [`Workload::generate`], but reuses `slot`'s buffers when it
    /// already holds a realization of the right size that nothing else
    /// references — the campaign runners' per-thread scratch path, which
    /// makes replication loops allocation-free after the first run.
    ///
    /// The sample stream is bit-identical to [`Workload::generate`] with the
    /// same seed: both paths draw through `Workload::fill_times` in index
    /// order and build the prefix sums with the same sequential additions.
    pub fn generate_into(&self, seed: u64, slot: &mut Option<TaskTimes>) {
        let mut rng = Rand48::from_seed(seed);
        let n = self.n as usize;
        if let Some(tt) = slot {
            if tt.len() == n {
                if let Some((times, prefix)) = tt.unique_buffers() {
                    self.fill_times(&mut rng, times);
                    task_times::fill_prefix(times, prefix);
                    return;
                }
            }
        }
        *slot = Some(self.generate_with(&mut rng));
    }

    /// Draws one sample per task into `out`, in task-index order.
    fn fill_times<U: UniformSource>(&self, rng: &mut U, out: &mut [f64]) {
        match &self.model {
            TimeModel::Constant { time } => out.fill(*time),
            TimeModel::LinearDecreasing { first, last }
            | TimeModel::LinearIncreasing { first, last } => ramp_into(out, *first, *last),
            TimeModel::Uniform { lo, hi } => {
                let d = Uniform::new(*lo, *hi).expect("validated");
                out.iter_mut().for_each(|x| *x = d.sample(rng));
            }
            TimeModel::Exponential { mean } => {
                let d = Exponential::new(*mean).expect("validated");
                out.iter_mut().for_each(|x| *x = d.sample(rng));
            }
            TimeModel::Normal { mean, std } => {
                let d = Normal::new(*mean, *std).expect("validated");
                out.iter_mut().for_each(|x| *x = d.sample_truncated(rng));
            }
            TimeModel::Gamma { shape, scale } => {
                let d = Gamma::new(*shape, *scale).expect("validated");
                out.iter_mut().for_each(|x| *x = d.sample(rng));
            }
            TimeModel::LogNormal { mean, std } => {
                let d = LogNormal::from_mean_std(*mean, *std).expect("validated");
                out.iter_mut().for_each(|x| *x = d.sample(rng));
            }
            TimeModel::Weibull { shape, scale } => {
                let d = Weibull::new(*shape, *scale).expect("validated");
                out.iter_mut().for_each(|x| *x = d.sample(rng));
            }
            TimeModel::Bimodal { a, b, p_a } => {
                let d = Bimodal::new(*a, *b, *p_a).expect("validated");
                out.iter_mut().for_each(|x| *x = d.sample(rng));
            }
            TimeModel::Trace { times } => {
                out.iter_mut().enumerate().for_each(|(i, x)| *x = times[i % times.len()]);
            }
        }
    }
}

fn ramp_into(out: &mut [f64], first: f64, last: f64) {
    let n = out.len();
    if n == 1 {
        out[0] = first;
        return;
    }
    let step = (last - first) / (n as f64 - 1.0);
    out.iter_mut().enumerate().for_each(|(i, x)| *x = first + step * i as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_workload_moments() {
        let w = Workload::constant(100, 2e-3);
        assert_eq!(w.mean(), 2e-3);
        assert_eq!(w.variance(), 0.0);
        let t = w.generate(0);
        assert_eq!(t.len(), 100);
        assert!(t.iter().all(|x| x == 2e-3));
    }

    #[test]
    fn zero_tasks_rejected() {
        assert_eq!(
            Workload::new(0, TimeModel::Constant { time: 1.0 }).unwrap_err(),
            WorkloadError::NoTasks
        );
    }

    #[test]
    fn negative_constant_rejected() {
        assert!(Workload::new(1, TimeModel::Constant { time: -1.0 }).is_err());
    }

    #[test]
    fn decreasing_ramp_shape() {
        let w = Workload::new(5, TimeModel::LinearDecreasing { first: 10.0, last: 2.0 }).unwrap();
        let t = w.generate(0);
        let v: Vec<f64> = t.iter().collect();
        assert_eq!(v[0], 10.0);
        assert_eq!(v[4], 2.0);
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn increasing_ramp_shape() {
        let w = Workload::new(5, TimeModel::LinearIncreasing { first: 2.0, last: 10.0 }).unwrap();
        let v: Vec<f64> = w.generate(0).iter().collect();
        assert_eq!(v[0], 2.0);
        assert_eq!(v[4], 10.0);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn single_task_ramp() {
        let w = Workload::new(1, TimeModel::LinearDecreasing { first: 3.0, last: 1.0 }).unwrap();
        assert_eq!(w.generate(0).iter().next(), Some(3.0));
    }

    #[test]
    fn exponential_sample_mean_close_to_mu() {
        let w = Workload::exponential(200_000, 1.0).unwrap();
        let t = w.generate(77);
        let mean = t.total() / t.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let w = Workload::exponential(1000, 1.0).unwrap();
        let a = w.generate(5);
        let b = w.generate(5);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        let c = w.generate(6);
        assert_ne!(a.iter().collect::<Vec<_>>(), c.iter().collect::<Vec<_>>());
    }

    #[test]
    fn trace_workload_cycles() {
        let w = Workload::new(5, TimeModel::Trace { times: Arc::new(vec![1.0, 2.0]) }).unwrap();
        let v: Vec<f64> = w.generate(0).iter().collect();
        assert_eq!(v, vec![1.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn empty_trace_rejected() {
        assert_eq!(
            Workload::new(3, TimeModel::Trace { times: Arc::new(vec![]) }).unwrap_err(),
            WorkloadError::EmptyTrace
        );
    }

    #[test]
    fn stochastic_classification() {
        assert!(!Workload::constant(1, 1.0).is_stochastic());
        assert!(Workload::exponential(1, 1.0).unwrap().is_stochastic());
        assert!(!Workload::new(2, TimeModel::LinearDecreasing { first: 2.0, last: 1.0 })
            .unwrap()
            .is_stochastic());
    }

    #[test]
    fn tss_publication_workloads() {
        // Experiment 1: 100,000 tasks of 110 µs; experiment 2: 10,000 of 2 ms.
        let e1 = Workload::constant(100_000, 110e-6);
        let e2 = Workload::constant(10_000, 2e-3);
        assert_eq!(e1.n(), 100_000);
        assert!((e1.mean() - 110e-6).abs() < 1e-12);
        assert!((e2.generate(0).total() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bold_publication_workload_moments() {
        // Exponential µ = 1 s ⇒ σ = 1 s, exactly the Table III parameters.
        let w = Workload::exponential(1024, 1.0).unwrap();
        assert_eq!(w.mean(), 1.0);
        assert_eq!(w.std_dev(), 1.0);
    }

    #[test]
    fn workload_is_serde() {
        // serde_json is not a dependency here; the full round-trip is
        // exercised in the dls-repro spec tests. This pins the trait bounds.
        fn assert_serde<T: serde::Serialize + for<'a> serde::Deserialize<'a>>() {}
        assert_serde::<Workload>();
    }

    #[test]
    fn trace_text_parsing() {
        let w = Workload::from_trace_text("1.0 2.5\n# comment line\n3.0 # trailing\n").unwrap();
        assert_eq!(w.n(), 3);
        let v: Vec<f64> = w.generate(0).iter().collect();
        assert_eq!(v, vec![1.0, 2.5, 3.0]);
        assert!((w.mean() - (6.5 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn trace_text_rejects_garbage() {
        assert!(Workload::from_trace_text("1.0 oops").is_err());
        assert_eq!(
            Workload::from_trace_text("# only comments\n").unwrap_err(),
            WorkloadError::EmptyTrace
        );
        assert!(Workload::from_trace_text("1.0 -2.0").is_err());
    }

    #[test]
    fn generate_into_matches_generate_bit_for_bit() {
        let w = Workload::exponential(512, 1.0).unwrap();
        let mut slot = None;
        for seed in [0u64, 1, 42, u64::MAX] {
            let fresh = w.generate(seed);
            // First iteration allocates, later ones refill in place.
            w.generate_into(seed, &mut slot);
            assert_eq!(slot.as_ref().unwrap(), &fresh);
        }
        // A live clone forces the fallback allocation; results still match.
        let alias = slot.clone();
        w.generate_into(7, &mut slot);
        assert_eq!(slot.as_ref().unwrap(), &w.generate(7));
        drop(alias);
        // A size change also falls back.
        let w2 = Workload::exponential(100, 1.0).unwrap();
        w2.generate_into(7, &mut slot);
        assert_eq!(slot.as_ref().unwrap(), &w2.generate(7));
        // Deterministic ramps take the fill path too.
        let ramp =
            Workload::new(64, TimeModel::LinearDecreasing { first: 9.0, last: 1.0 }).unwrap();
        let mut rslot = None;
        ramp.generate_into(0, &mut rslot);
        assert_eq!(rslot.as_ref().unwrap(), &ramp.generate(0));
    }

    #[test]
    fn normal_workload_nonnegative() {
        let w = Workload::new(10_000, TimeModel::Normal { mean: 0.5, std: 2.0 }).unwrap();
        assert!(w.generate(3).iter().all(|t| t >= 0.0));
    }
}

//! Materialized per-task execution times with O(1) chunk sums.

use std::sync::Arc;

/// One sampled realization of a workload's per-task execution times.
///
/// Stores the raw times plus a prefix-sum array so that the cost of a chunk
/// of consecutive tasks `[start, end)` is a single subtraction. Both
/// simulators charge whole chunks, never single tasks, which keeps event
/// counts proportional to scheduling operations rather than task counts.
///
/// Both arrays live behind `Arc<[f64]>`, so `clone()` is a reference-count
/// bump: the generator, the `dls-msgsim` master and the outcome accounting
/// all share one allocation per realization instead of deep-copying it per
/// run. When a caller holds the only reference (the campaign runners'
/// scratch slots), [`Workload::generate_into`](crate::Workload::generate_into)
/// refills the buffers in place without allocating at all.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTimes {
    times: Arc<[f64]>,
    prefix: Arc<[f64]>,
}

/// Allocates a zeroed shared slice in one pass (no intermediate `Vec`;
/// `iter::repeat_n` would read better but postdates the workspace MSRV).
pub(crate) fn zeroed_arc(n: usize) -> Arc<[f64]> {
    (0..n).map(|_| 0.0).collect()
}

/// Fills `prefix` (length `times.len() + 1`) with the running sums of
/// `times`. Strictly sequential left-to-right additions, so the result is
/// bit-identical regardless of which buffer it lands in.
pub(crate) fn fill_prefix(times: &[f64], prefix: &mut [f64]) {
    debug_assert_eq!(prefix.len(), times.len() + 1);
    let mut acc = 0.0f64;
    prefix[0] = 0.0;
    for (i, &t) in times.iter().enumerate() {
        acc += t;
        prefix[i + 1] = acc;
    }
}

impl TaskTimes {
    /// Wraps raw per-task times (seconds), building the prefix sums.
    pub fn new(times: Vec<f64>) -> Self {
        let times: Arc<[f64]> = times.into();
        let mut prefix = zeroed_arc(times.len() + 1);
        fill_prefix(&times, Arc::get_mut(&mut prefix).expect("freshly allocated"));
        TaskTimes { times, prefix }
    }

    /// Assembles a realization from pre-filled shared buffers.
    pub(crate) fn from_parts(times: Arc<[f64]>, prefix: Arc<[f64]>) -> Self {
        debug_assert_eq!(prefix.len(), times.len() + 1);
        TaskTimes { times, prefix }
    }

    /// Mutable views of both buffers when this is the sole owner (no other
    /// clone of the realization alive), for in-place regeneration.
    pub(crate) fn unique_buffers(&mut self) -> Option<(&mut [f64], &mut [f64])> {
        if Arc::get_mut(&mut self.times).is_none() || Arc::get_mut(&mut self.prefix).is_none() {
            return None;
        }
        Some((
            Arc::get_mut(&mut self.times).expect("uniqueness just checked"),
            Arc::get_mut(&mut self.prefix).expect("uniqueness just checked"),
        ))
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Execution time of task `i` (unit-speed seconds).
    pub fn time(&self, i: usize) -> f64 {
        self.times[i]
    }

    /// Total execution time of all tasks (the serial time `T_1`).
    pub fn total(&self) -> f64 {
        self.prefix[self.times.len()]
    }

    /// Sum of task times in `[start, end)`, O(1).
    ///
    /// # Panics
    /// If `start > end` or `end > len()`.
    pub fn chunk_sum(&self, start: usize, end: usize) -> f64 {
        assert!(start <= end && end <= self.times.len(), "chunk out of range");
        self.prefix[end] - self.prefix[start]
    }

    /// Iterator over the raw times.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.times.iter().copied()
    }

    /// The prefix-sum array (`len() + 1` entries, `prefix()[0] == 0.0`).
    ///
    /// `chunk_sum(s, e)` is exactly `prefix()[e] - prefix()[s]`; batch
    /// simulators index this slice directly so the per-chunk work read is
    /// two loads and a subtract with no bounds re-derivation per seed.
    pub fn prefix(&self) -> &[f64] {
        &self.prefix
    }

    /// Empirical mean of this realization.
    pub fn empirical_mean(&self) -> f64 {
        if self.times.is_empty() {
            0.0
        } else {
            self.total() / self.times.len() as f64
        }
    }

    /// Empirical (population) variance of this realization.
    pub fn empirical_variance(&self) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        let m = self.empirical_mean();
        self.times.iter().map(|t| (t - m) * (t - m)).sum::<f64>() / self.times.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_match_naive() {
        let t = TaskTimes::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.chunk_sum(0, 0), 0.0);
        assert_eq!(t.chunk_sum(0, 4), 10.0);
        assert_eq!(t.chunk_sum(1, 3), 5.0);
        assert_eq!(t.total(), 10.0);
    }

    #[test]
    fn empirical_moments() {
        let t = TaskTimes::new(vec![2.0, 4.0, 6.0]);
        assert!((t.empirical_mean() - 4.0).abs() < 1e-12);
        assert!((t.empirical_variance() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "chunk out of range")]
    fn chunk_bounds_checked() {
        TaskTimes::new(vec![1.0]).chunk_sum(0, 2);
    }

    #[test]
    fn empty_is_safe() {
        let t = TaskTimes::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.total(), 0.0);
        assert_eq!(t.empirical_mean(), 0.0);
        assert_eq!(t.empirical_variance(), 0.0);
    }

    #[test]
    fn prefix_is_bitwise_left_to_right_accumulation() {
        // Pin the summation order: prefix[i+1] must be the exact f64
        // produced by strictly sequential `acc += t` — the same order the
        // scalar simulator's original per-chunk loop used. Any reassociated
        // (pairwise/compensated) variant would diverge in the low bits on
        // this irrational-ish input.
        let times: Vec<f64> = (0..257).map(|i| 1.0 / (i as f64 + 0.3)).collect();
        let t = TaskTimes::new(times.clone());
        let mut acc = 0.0f64;
        assert_eq!(t.prefix()[0].to_bits(), 0.0f64.to_bits());
        for (i, &x) in times.iter().enumerate() {
            acc += x;
            assert_eq!(t.prefix()[i + 1].to_bits(), acc.to_bits(), "prefix[{}]", i + 1);
        }
        assert_eq!(t.prefix().len(), t.len() + 1);
    }

    #[test]
    fn chunk_sum_is_bitwise_prefix_difference() {
        let times: Vec<f64> = (0..64).map(|i| (i as f64).sin().abs() + 1e-3).collect();
        let t = TaskTimes::new(times);
        for s in [0usize, 1, 17, 63] {
            for e in [s, s + 1, 64] {
                let direct = t.prefix()[e] - t.prefix()[s];
                assert_eq!(t.chunk_sum(s, e).to_bits(), direct.to_bits(), "[{s}, {e})");
            }
        }
    }

    #[test]
    fn clone_shares_buffers() {
        let mut t = TaskTimes::new(vec![1.0, 2.0]);
        let c = t.clone();
        // While a clone is alive the buffers are shared, not copyable.
        assert!(t.unique_buffers().is_none());
        drop(c);
        assert!(t.unique_buffers().is_some());
    }
}

//! Materialized per-task execution times with O(1) chunk sums.

/// One sampled realization of a workload's per-task execution times.
///
/// Stores the raw times plus a prefix-sum array so that the cost of a chunk
/// of consecutive tasks `[start, end)` is a single subtraction. Both
/// simulators charge whole chunks, never single tasks, which keeps event
/// counts proportional to scheduling operations rather than task counts.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskTimes {
    times: Vec<f64>,
    prefix: Vec<f64>,
}

impl TaskTimes {
    /// Wraps raw per-task times (seconds), building the prefix sums.
    pub fn new(times: Vec<f64>) -> Self {
        let mut prefix = Vec::with_capacity(times.len() + 1);
        let mut acc = 0.0f64;
        prefix.push(0.0);
        for &t in &times {
            acc += t;
            prefix.push(acc);
        }
        TaskTimes { times, prefix }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Execution time of task `i` (unit-speed seconds).
    pub fn time(&self, i: usize) -> f64 {
        self.times[i]
    }

    /// Total execution time of all tasks (the serial time `T_1`).
    pub fn total(&self) -> f64 {
        self.prefix[self.times.len()]
    }

    /// Sum of task times in `[start, end)`, O(1).
    ///
    /// # Panics
    /// If `start > end` or `end > len()`.
    pub fn chunk_sum(&self, start: usize, end: usize) -> f64 {
        assert!(start <= end && end <= self.times.len(), "chunk out of range");
        self.prefix[end] - self.prefix[start]
    }

    /// Iterator over the raw times.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.times.iter().copied()
    }

    /// Empirical mean of this realization.
    pub fn empirical_mean(&self) -> f64 {
        if self.times.is_empty() {
            0.0
        } else {
            self.total() / self.times.len() as f64
        }
    }

    /// Empirical (population) variance of this realization.
    pub fn empirical_variance(&self) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        let m = self.empirical_mean();
        self.times.iter().map(|t| (t - m) * (t - m)).sum::<f64>() / self.times.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_match_naive() {
        let t = TaskTimes::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.chunk_sum(0, 0), 0.0);
        assert_eq!(t.chunk_sum(0, 4), 10.0);
        assert_eq!(t.chunk_sum(1, 3), 5.0);
        assert_eq!(t.total(), 10.0);
    }

    #[test]
    fn empirical_moments() {
        let t = TaskTimes::new(vec![2.0, 4.0, 6.0]);
        assert!((t.empirical_mean() - 4.0).abs() < 1e-12);
        assert!((t.empirical_variance() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "chunk out of range")]
    fn chunk_bounds_checked() {
        TaskTimes::new(vec![1.0]).chunk_sum(0, 2);
    }

    #[test]
    fn empty_is_safe() {
        let t = TaskTimes::new(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.total(), 0.0);
        assert_eq!(t.empirical_mean(), 0.0);
        assert_eq!(t.empirical_variance(), 0.0);
    }
}

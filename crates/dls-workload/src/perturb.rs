//! Processing-element availability / perturbation models.
//!
//! The paper's predecessors ([2], [3] in its bibliography) study DLS
//! *robustness* and *resilience* by fluctuating PE speeds during execution.
//! This module provides the systemic-variability substrate those follow-on
//! experiments need: a per-PE, time-dependent speed multiplier.

use serde::{Deserialize, Serialize};

/// A deterministic model of how a PE's effective speed varies over time.
///
/// A multiplier of `1.0` is nominal speed; `0.5` means the PE delivers half
/// its nominal throughput (e.g. an external load spike); `0.0` models a
/// fail-stop interval.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum PerturbationModel {
    /// No perturbation — always nominal speed.
    None,
    /// Constant degradation to `factor` of nominal speed.
    ConstantFactor {
        /// Speed multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Sinusoidal load: speed oscillates between `1-amplitude` and `1`.
    Sinusoidal {
        /// Peak-to-trough amplitude in `[0, 1)`.
        amplitude: f64,
        /// Oscillation period in seconds.
        period: f64,
    },
    /// Step degradation: nominal until `at`, then `factor` forever.
    Step {
        /// Time of the perturbation onset (seconds).
        at: f64,
        /// Speed multiplier after onset, in `[0, 1]`.
        factor: f64,
    },
}

impl PerturbationModel {
    /// Effective speed multiplier at simulated time `t` (seconds).
    pub fn speed_factor(&self, t: f64) -> f64 {
        match self {
            PerturbationModel::None => 1.0,
            PerturbationModel::ConstantFactor { factor } => *factor,
            PerturbationModel::Sinusoidal { amplitude, period } => {
                let phase = (t / period) * std::f64::consts::TAU;
                1.0 - amplitude * 0.5 * (1.0 - phase.cos())
            }
            PerturbationModel::Step { at, factor } => {
                if t < *at {
                    1.0
                } else {
                    *factor
                }
            }
        }
    }

    /// Average speed factor over the window `[t0, t1]`, by midpoint sampling.
    ///
    /// Chunk executions are charged with the average factor over their
    /// duration; for the models here the midpoint rule is exact (constant,
    /// step away from the boundary) or second-order accurate (sinusoid).
    pub fn average_factor(&self, t0: f64, t1: f64) -> f64 {
        match self {
            PerturbationModel::None => 1.0,
            PerturbationModel::ConstantFactor { factor } => *factor,
            PerturbationModel::Sinusoidal { .. } => self.speed_factor(0.5 * (t0 + t1)),
            PerturbationModel::Step { at, factor } => {
                if t1 <= *at {
                    1.0
                } else if t0 >= *at {
                    *factor
                } else {
                    let span = t1 - t0;
                    if span <= 0.0 {
                        self.speed_factor(t0)
                    } else {
                        ((at - t0) + factor * (t1 - at)) / span
                    }
                }
            }
        }
    }
}

/// Per-PE availability description: nominal weight plus perturbation.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Availability {
    /// Relative nominal speed (1.0 = reference PE).
    pub weight: f64,
    /// Time-dependent perturbation applied on top of the weight.
    pub perturbation: PerturbationModel,
}

impl Availability {
    /// Nominal, unperturbed availability.
    pub fn nominal() -> Self {
        Availability { weight: 1.0, perturbation: PerturbationModel::None }
    }

    /// Effective speed at time `t`.
    pub fn speed_at(&self, t: f64) -> f64 {
        self.weight * self.perturbation.speed_factor(t)
    }
}

impl Default for Availability {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unit() {
        let p = PerturbationModel::None;
        assert_eq!(p.speed_factor(0.0), 1.0);
        assert_eq!(p.speed_factor(1e9), 1.0);
        assert_eq!(p.average_factor(0.0, 10.0), 1.0);
    }

    #[test]
    fn constant_factor() {
        let p = PerturbationModel::ConstantFactor { factor: 0.25 };
        assert_eq!(p.speed_factor(3.0), 0.25);
        assert_eq!(p.average_factor(1.0, 2.0), 0.25);
    }

    #[test]
    fn sinusoid_bounds() {
        let p = PerturbationModel::Sinusoidal { amplitude: 0.4, period: 10.0 };
        for i in 0..100 {
            let f = p.speed_factor(i as f64 * 0.37);
            assert!((0.6..=1.0 + 1e-12).contains(&f), "factor {f}");
        }
        // At t = 0 the sinusoid starts at nominal speed.
        assert!((p.speed_factor(0.0) - 1.0).abs() < 1e-12);
        // At half period it bottoms out at 1 - amplitude.
        assert!((p.speed_factor(5.0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn step_before_after() {
        let p = PerturbationModel::Step { at: 5.0, factor: 0.5 };
        assert_eq!(p.speed_factor(4.9), 1.0);
        assert_eq!(p.speed_factor(5.0), 0.5);
        // Window straddling the step averages linearly.
        assert!((p.average_factor(4.0, 6.0) - 0.75).abs() < 1e-12);
        assert_eq!(p.average_factor(0.0, 5.0), 1.0);
        assert_eq!(p.average_factor(5.0, 9.0), 0.5);
    }

    #[test]
    fn availability_combines_weight_and_perturbation() {
        let a = Availability {
            weight: 2.0,
            perturbation: PerturbationModel::ConstantFactor { factor: 0.5 },
        };
        assert_eq!(a.speed_at(1.0), 1.0);
        assert_eq!(Availability::nominal().speed_at(0.0), 1.0);
    }
}

//! Processing-element availability / perturbation models.
//!
//! The paper's predecessors ([2], [3] in its bibliography) study DLS
//! *robustness* and *resilience* by fluctuating PE speeds during execution.
//! This module provides the systemic-variability substrate those follow-on
//! experiments need: a per-PE, time-dependent speed multiplier.

use serde::{Deserialize, Serialize};

/// Errors from invalid perturbation-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerturbError {
    /// A speed factor outside `(0, 1]` or not finite.
    BadFactor(f64),
    /// A sinusoid amplitude outside `[0, 1)` or not finite.
    BadAmplitude(f64),
    /// A sinusoid period that is not finite and positive.
    BadPeriod(f64),
    /// A step onset time that is negative or not finite.
    BadOnset(f64),
}

impl std::fmt::Display for PerturbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerturbError::BadFactor(v) => {
                write!(f, "speed factor must be finite and in (0, 1], got {v}")
            }
            PerturbError::BadAmplitude(v) => {
                write!(f, "amplitude must be finite and in [0, 1), got {v}")
            }
            PerturbError::BadPeriod(v) => {
                write!(f, "period must be finite and > 0, got {v}")
            }
            PerturbError::BadOnset(v) => {
                write!(f, "onset time must be finite and >= 0, got {v}")
            }
        }
    }
}

impl std::error::Error for PerturbError {}

/// A deterministic model of how a PE's effective speed varies over time.
///
/// A multiplier of `1.0` is nominal speed; `0.5` means the PE delivers half
/// its nominal throughput (e.g. an external load spike); `0.0` models a
/// fail-stop interval.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum PerturbationModel {
    /// No perturbation — always nominal speed.
    None,
    /// Constant degradation to `factor` of nominal speed.
    ConstantFactor {
        /// Speed multiplier in `(0, 1]`.
        factor: f64,
    },
    /// Sinusoidal load: speed oscillates between `1-amplitude` and `1`.
    Sinusoidal {
        /// Peak-to-trough amplitude in `[0, 1)`.
        amplitude: f64,
        /// Oscillation period in seconds.
        period: f64,
    },
    /// Step degradation: nominal until `at`, then `factor` forever.
    Step {
        /// Time of the perturbation onset (seconds).
        at: f64,
        /// Speed multiplier after onset, in `[0, 1]`.
        factor: f64,
    },
}

impl PerturbationModel {
    /// Checked [`PerturbationModel::ConstantFactor`]: `factor` must be
    /// finite and in `(0, 1]` — zero or negative speed would stall a PE
    /// forever and NaN would poison every derived makespan.
    pub fn constant_factor(factor: f64) -> Result<Self, PerturbError> {
        let m = PerturbationModel::ConstantFactor { factor };
        m.validate()?;
        Ok(m)
    }

    /// Checked [`PerturbationModel::Sinusoidal`]: `amplitude` in `[0, 1)`,
    /// `period` finite and `> 0` (a non-positive period makes the phase
    /// undefined).
    pub fn sinusoidal(amplitude: f64, period: f64) -> Result<Self, PerturbError> {
        let m = PerturbationModel::Sinusoidal { amplitude, period };
        m.validate()?;
        Ok(m)
    }

    /// Checked [`PerturbationModel::Step`]: `at` finite and `>= 0`,
    /// `factor` finite and in `[0, 1]` (zero models a permanent stall).
    pub fn step(at: f64, factor: f64) -> Result<Self, PerturbError> {
        let m = PerturbationModel::Step { at, factor };
        m.validate()?;
        Ok(m)
    }

    /// Validates the model's parameters (the checked constructors call
    /// this; call it directly on deserialized or literal-built models).
    pub fn validate(&self) -> Result<(), PerturbError> {
        match *self {
            PerturbationModel::None => Ok(()),
            PerturbationModel::ConstantFactor { factor } => {
                if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                    return Err(PerturbError::BadFactor(factor));
                }
                Ok(())
            }
            PerturbationModel::Sinusoidal { amplitude, period } => {
                if !amplitude.is_finite() || !(0.0..1.0).contains(&amplitude) {
                    return Err(PerturbError::BadAmplitude(amplitude));
                }
                if !period.is_finite() || period <= 0.0 {
                    return Err(PerturbError::BadPeriod(period));
                }
                Ok(())
            }
            PerturbationModel::Step { at, factor } => {
                if !at.is_finite() || at < 0.0 {
                    return Err(PerturbError::BadOnset(at));
                }
                if !factor.is_finite() || !(0.0..=1.0).contains(&factor) {
                    return Err(PerturbError::BadFactor(factor));
                }
                Ok(())
            }
        }
    }

    /// Effective speed multiplier at simulated time `t` (seconds).
    pub fn speed_factor(&self, t: f64) -> f64 {
        match self {
            PerturbationModel::None => 1.0,
            PerturbationModel::ConstantFactor { factor } => *factor,
            PerturbationModel::Sinusoidal { amplitude, period } => {
                let phase = (t / period) * std::f64::consts::TAU;
                1.0 - amplitude * 0.5 * (1.0 - phase.cos())
            }
            PerturbationModel::Step { at, factor } => {
                if t < *at {
                    1.0
                } else {
                    *factor
                }
            }
        }
    }

    /// Average speed factor over the window `[t0, t1]`, by midpoint sampling.
    ///
    /// Chunk executions are charged with the average factor over their
    /// duration; for the models here the midpoint rule is exact (constant,
    /// step away from the boundary) or second-order accurate (sinusoid).
    pub fn average_factor(&self, t0: f64, t1: f64) -> f64 {
        match self {
            PerturbationModel::None => 1.0,
            PerturbationModel::ConstantFactor { factor } => *factor,
            PerturbationModel::Sinusoidal { .. } => self.speed_factor(0.5 * (t0 + t1)),
            PerturbationModel::Step { at, factor } => {
                if t1 <= *at {
                    1.0
                } else if t0 >= *at {
                    *factor
                } else {
                    let span = t1 - t0;
                    if span <= 0.0 {
                        self.speed_factor(t0)
                    } else {
                        ((at - t0) + factor * (t1 - at)) / span
                    }
                }
            }
        }
    }
}

/// Per-PE availability description: nominal weight plus perturbation.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Availability {
    /// Relative nominal speed (1.0 = reference PE).
    pub weight: f64,
    /// Time-dependent perturbation applied on top of the weight.
    pub perturbation: PerturbationModel,
}

impl Availability {
    /// Nominal, unperturbed availability.
    pub fn nominal() -> Self {
        Availability { weight: 1.0, perturbation: PerturbationModel::None }
    }

    /// Effective speed at time `t`.
    pub fn speed_at(&self, t: f64) -> f64 {
        self.weight * self.perturbation.speed_factor(t)
    }
}

impl Default for Availability {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unit() {
        let p = PerturbationModel::None;
        assert_eq!(p.speed_factor(0.0), 1.0);
        assert_eq!(p.speed_factor(1e9), 1.0);
        assert_eq!(p.average_factor(0.0, 10.0), 1.0);
    }

    #[test]
    fn constant_factor() {
        let p = PerturbationModel::ConstantFactor { factor: 0.25 };
        assert_eq!(p.speed_factor(3.0), 0.25);
        assert_eq!(p.average_factor(1.0, 2.0), 0.25);
    }

    #[test]
    fn sinusoid_bounds() {
        let p = PerturbationModel::Sinusoidal { amplitude: 0.4, period: 10.0 };
        for i in 0..100 {
            let f = p.speed_factor(i as f64 * 0.37);
            assert!((0.6..=1.0 + 1e-12).contains(&f), "factor {f}");
        }
        // At t = 0 the sinusoid starts at nominal speed.
        assert!((p.speed_factor(0.0) - 1.0).abs() < 1e-12);
        // At half period it bottoms out at 1 - amplitude.
        assert!((p.speed_factor(5.0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn step_before_after() {
        let p = PerturbationModel::Step { at: 5.0, factor: 0.5 };
        assert_eq!(p.speed_factor(4.9), 1.0);
        assert_eq!(p.speed_factor(5.0), 0.5);
        // Window straddling the step averages linearly.
        assert!((p.average_factor(4.0, 6.0) - 0.75).abs() < 1e-12);
        assert_eq!(p.average_factor(0.0, 5.0), 1.0);
        assert_eq!(p.average_factor(5.0, 9.0), 0.5);
    }

    #[test]
    fn checked_constructors_accept_valid_parameters() {
        assert!(PerturbationModel::constant_factor(0.5).is_ok());
        assert!(PerturbationModel::constant_factor(1.0).is_ok());
        assert!(PerturbationModel::sinusoidal(0.0, 10.0).is_ok());
        assert!(PerturbationModel::sinusoidal(0.99, 1e-6).is_ok());
        assert!(PerturbationModel::step(0.0, 0.0).is_ok());
        assert!(PerturbationModel::None.validate().is_ok());
    }

    #[test]
    fn constant_factor_rejects_zero_negative_and_nan() {
        for bad in [0.0, -0.5, f64::NAN, f64::INFINITY, 1.5] {
            let e = PerturbationModel::constant_factor(bad).unwrap_err();
            assert!(matches!(e, PerturbError::BadFactor(_)), "{bad} -> {e}");
        }
    }

    #[test]
    fn sinusoidal_rejects_bad_period_and_amplitude() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let e = PerturbationModel::sinusoidal(0.5, bad).unwrap_err();
            assert!(matches!(e, PerturbError::BadPeriod(_)), "{bad} -> {e}");
        }
        assert!(matches!(
            PerturbationModel::sinusoidal(1.0, 10.0).unwrap_err(),
            PerturbError::BadAmplitude(_)
        ));
        assert!(matches!(
            PerturbationModel::sinusoidal(-0.1, 10.0).unwrap_err(),
            PerturbError::BadAmplitude(_)
        ));
    }

    #[test]
    fn step_rejects_bad_onset_and_factor() {
        assert!(matches!(
            PerturbationModel::step(-1.0, 0.5).unwrap_err(),
            PerturbError::BadOnset(_)
        ));
        assert!(matches!(
            PerturbationModel::step(f64::NAN, 0.5).unwrap_err(),
            PerturbError::BadOnset(_)
        ));
        assert!(matches!(
            PerturbationModel::step(1.0, 1.1).unwrap_err(),
            PerturbError::BadFactor(_)
        ));
        assert!(matches!(
            PerturbationModel::step(1.0, -0.1).unwrap_err(),
            PerturbError::BadFactor(_)
        ));
    }

    #[test]
    fn errors_render_the_offending_value() {
        let msg = PerturbationModel::constant_factor(-2.0).unwrap_err().to_string();
        assert!(msg.contains("-2"), "{msg}");
    }

    #[test]
    fn availability_combines_weight_and_perturbation() {
        let a = Availability {
            weight: 2.0,
            perturbation: PerturbationModel::ConstantFactor { factor: 0.5 },
        };
        assert_eq!(a.speed_at(1.0), 1.0);
        assert_eq!(Availability::nominal().speed_at(0.0), 1.0);
    }
}

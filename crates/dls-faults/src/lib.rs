//! Deterministic fault-injection plans for the MSG simulator.
//!
//! A [`FaultPlan`] is a declarative, serializable description of everything
//! that goes wrong during one simulated run:
//!
//! * **fail-stop** — a worker dies at virtual time *t* and never recovers
//!   (crash-stop model, no Byzantine behaviour),
//! * **partition** — the link to one worker drops every message in a window
//!   `[from, until)`, in both directions,
//! * **message loss** — every message is independently lost with a fixed
//!   probability, decided by a [`SplitMix64`] stream seeded from the plan,
//! * **latency spike** — messages crossing one worker's link during a window
//!   arrive late by a fixed extra delay.
//!
//! Everything is a pure function of `(plan, seed)`: the loss stream is
//! seeded from [`FaultPlan::seed`], windows are closed-open in integer
//! nanoseconds, and the engine consults the compiled interceptor in
//! deterministic command order. Two runs of the same scenario under the
//! same plan are therefore byte-identical — the property the reproducibility
//! harness tests enforce.
//!
//! The plan speaks in *worker indices* (0-based, as reported in
//! `SimOutcome::chunks_per_worker`); compiling it for an engine translates
//! those to actor ids via a caller-supplied mapping, so this crate does not
//! hard-code the master/worker actor layout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dls_des::{ActorId, DeliveryMeta, Interceptor, SimTime, Verdict};
use dls_rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// One worker crashing permanently at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailStop {
    /// Worker index (0-based).
    pub worker: usize,
    /// Crash time in simulated seconds.
    pub at: f64,
}

/// A transient two-way partition of one worker's link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Worker index (0-based) whose link is cut.
    pub worker: usize,
    /// Window start in simulated seconds (inclusive).
    pub from: f64,
    /// Window end in simulated seconds (exclusive).
    pub until: f64,
}

/// Extra latency applied to messages crossing one worker's link in a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySpike {
    /// Worker index (0-based) whose link is slow.
    pub worker: usize,
    /// Window start in simulated seconds (inclusive).
    pub from: f64,
    /// Window end in simulated seconds (exclusive).
    pub until: f64,
    /// Added one-way delay in seconds for affected messages.
    pub extra_secs: f64,
}

/// A complete, seedable description of the faults injected into one run.
///
/// The JSON form is what `repro faults --fault-plan <file>` consumes; all
/// fields default so partial plans parse:
///
/// ```json
/// {
///   "seed": 7,
///   "fail_stops": [{ "worker": 2, "at": 40.0 }],
///   "partitions": [{ "worker": 0, "from": 10.0, "until": 12.5 }],
///   "loss_probability": 0.01,
///   "latency_spikes": [{ "worker": 1, "from": 5.0, "until": 6.0, "extra_secs": 0.25 }]
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-message loss stream (irrelevant when
    /// `loss_probability` is zero).
    #[serde(default)]
    pub seed: u64,
    /// Permanent worker crashes.
    #[serde(default)]
    pub fail_stops: Vec<FailStop>,
    /// Transient link partitions.
    #[serde(default)]
    pub partitions: Vec<Partition>,
    /// Independent per-message loss probability in `[0, 1)`.
    #[serde(default)]
    pub loss_probability: f64,
    /// Windowed latency injections.
    #[serde(default)]
    pub latency_spikes: Vec<LatencySpike>,
}

/// Why a [`FaultPlan`] was rejected by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// `loss_probability` outside `[0, 1)` or not finite.
    InvalidLossProbability(f64),
    /// A fail-stop time is negative or not finite.
    InvalidFailStopTime(f64),
    /// A window has `until <= from`, or a bound is negative / not finite.
    InvalidWindow {
        /// Window start as given.
        from: f64,
        /// Window end as given.
        until: f64,
    },
    /// A latency spike's extra delay is non-positive or not finite.
    InvalidSpikeDelay(f64),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::InvalidLossProbability(p) => {
                write!(f, "loss_probability {p} must be finite and in [0, 1)")
            }
            FaultPlanError::InvalidFailStopTime(t) => {
                write!(f, "fail-stop time {t} must be finite and non-negative")
            }
            FaultPlanError::InvalidWindow { from, until } => {
                write!(f, "window [{from}, {until}) must be finite, non-negative and non-empty")
            }
            FaultPlanError::InvalidSpikeDelay(d) => {
                write!(f, "latency spike delay {d} must be finite and positive")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

fn check_window(from: f64, until: f64) -> Result<(), FaultPlanError> {
    if !from.is_finite() || !until.is_finite() || from < 0.0 || until <= from {
        return Err(FaultPlanError::InvalidWindow { from, until });
    }
    Ok(())
}

impl FaultPlan {
    /// The empty plan: nothing fails. Running under it must be byte-identical
    /// to running with no fault machinery at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.fail_stops.is_empty()
            && self.partitions.is_empty()
            && self.loss_probability == 0.0
            && self.latency_spikes.is_empty()
    }

    /// Sets the loss-stream seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a fail-stop (builder style).
    pub fn with_fail_stop(mut self, worker: usize, at: f64) -> Self {
        self.fail_stops.push(FailStop { worker, at });
        self
    }

    /// Adds a link partition (builder style).
    pub fn with_partition(mut self, worker: usize, from: f64, until: f64) -> Self {
        self.partitions.push(Partition { worker, from, until });
        self
    }

    /// Sets the per-message loss probability (builder style).
    pub fn with_loss(mut self, probability: f64) -> Self {
        self.loss_probability = probability;
        self
    }

    /// Adds a latency spike (builder style).
    pub fn with_latency_spike(
        mut self,
        worker: usize,
        from: f64,
        until: f64,
        extra_secs: f64,
    ) -> Self {
        self.latency_spikes.push(LatencySpike { worker, from, until, extra_secs });
        self
    }

    /// Checks every numeric field for physical plausibility.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        if !self.loss_probability.is_finite()
            || self.loss_probability < 0.0
            || self.loss_probability >= 1.0
        {
            return Err(FaultPlanError::InvalidLossProbability(self.loss_probability));
        }
        for fs in &self.fail_stops {
            if !fs.at.is_finite() || fs.at < 0.0 {
                return Err(FaultPlanError::InvalidFailStopTime(fs.at));
            }
        }
        for p in &self.partitions {
            check_window(p.from, p.until)?;
        }
        for s in &self.latency_spikes {
            check_window(s.from, s.until)?;
            if !s.extra_secs.is_finite() || s.extra_secs <= 0.0 {
                return Err(FaultPlanError::InvalidSpikeDelay(s.extra_secs));
            }
        }
        Ok(())
    }

    /// The largest worker index the plan mentions, if any — callers use it
    /// to reject plans referencing workers the platform does not have.
    pub fn max_worker(&self) -> Option<usize> {
        let fails = self.fail_stops.iter().map(|f| f.worker);
        let parts = self.partitions.iter().map(|p| p.worker);
        let spikes = self.latency_spikes.iter().map(|s| s.worker);
        fails.chain(parts).chain(spikes).max()
    }

    /// Fail-stop schedule as `(worker, time)` pairs, earliest first (ties
    /// broken by worker index for determinism).
    pub fn fail_stop_schedule(&self) -> Vec<(usize, SimTime)> {
        let mut v: Vec<(usize, SimTime)> =
            self.fail_stops.iter().map(|f| (f.worker, SimTime::from_secs_f64(f.at))).collect();
        v.sort_by_key(|&(w, t)| (t, w));
        v
    }

    /// Compiles the link-level faults (partitions, loss, spikes) into an
    /// engine [`Interceptor`]. `worker_actor` maps a worker index to its
    /// actor id; fail-stops are *not* handled here (they are actor kills,
    /// see [`FaultPlan::fail_stop_schedule`]).
    pub fn link_faults(&self, worker_actor: impl Fn(usize) -> ActorId) -> LinkFaults {
        let windows =
            |from: f64, until: f64| (SimTime::from_secs_f64(from), SimTime::from_secs_f64(until));
        LinkFaults {
            partitions: self
                .partitions
                .iter()
                .map(|p| {
                    let (from, until) = windows(p.from, p.until);
                    (worker_actor(p.worker), from, until)
                })
                .collect(),
            spikes: self
                .latency_spikes
                .iter()
                .map(|s| {
                    let (from, until) = windows(s.from, s.until);
                    (worker_actor(s.worker), from, until, SimTime::from_secs_f64(s.extra_secs))
                })
                .collect(),
            loss_probability: self.loss_probability,
            rng: SplitMix64::new(self.seed),
        }
    }
}

/// The compiled, stateful link-fault interceptor (see
/// [`FaultPlan::link_faults`]).
///
/// Verdict precedence per message: partition drop, then probabilistic loss,
/// then latency spike, then normal delivery. The loss stream draws exactly
/// one deviate per message (when `loss_probability > 0`), so verdicts are a
/// pure function of the plan and the interception order — which the engine
/// guarantees is deterministic.
pub struct LinkFaults {
    partitions: Vec<(ActorId, SimTime, SimTime)>,
    spikes: Vec<(ActorId, SimTime, SimTime, SimTime)>,
    loss_probability: f64,
    rng: SplitMix64,
}

impl Interceptor for LinkFaults {
    fn intercept(&mut self, meta: &DeliveryMeta) -> Verdict {
        // Loss is drawn first and unconditionally (when enabled) so the
        // stream position depends only on the message count, not on which
        // windows happen to be open.
        let lost = self.loss_probability > 0.0 && self.rng.next_f64() < self.loss_probability;
        let on_link = |actor: ActorId| meta.from == actor || meta.to == actor;
        for &(actor, from, until) in &self.partitions {
            if on_link(actor) && meta.sent_at >= from && meta.sent_at < until {
                return Verdict::Drop;
            }
        }
        if lost {
            return Verdict::Drop;
        }
        for &(actor, from, until, extra) in &self.spikes {
            if on_link(actor) && meta.sent_at >= from && meta.sent_at < until {
                return Verdict::Delay(extra);
            }
        }
        Verdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(from: ActorId, to: ActorId, at_ns: u64) -> DeliveryMeta {
        DeliveryMeta {
            from,
            to,
            sent_at: SimTime::from_nanos(at_ns),
            deliver_at: SimTime::from_nanos(at_ns + 100),
            seq: 0,
        }
    }

    #[test]
    fn none_plan_is_none_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.max_worker(), None);
        assert!(plan.fail_stop_schedule().is_empty());
    }

    #[test]
    fn builder_round_trips_through_json() {
        let plan = FaultPlan::none()
            .with_seed(7)
            .with_fail_stop(2, 40.0)
            .with_partition(0, 10.0, 12.5)
            .with_loss(0.01)
            .with_latency_spike(1, 5.0, 6.0, 0.25);
        let json = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        assert!(!back.is_none());
        assert_eq!(back.max_worker(), Some(2));
    }

    #[test]
    fn partial_json_uses_defaults() {
        let plan: FaultPlan =
            serde_json::from_str(r#"{ "fail_stops": [{ "worker": 3, "at": 1.5 }] }"#).unwrap();
        assert_eq!(plan.seed, 0);
        assert_eq!(plan.loss_probability, 0.0);
        assert_eq!(plan.fail_stops, vec![FailStop { worker: 3, at: 1.5 }]);
        assert!(plan.partitions.is_empty());
    }

    #[test]
    fn validation_rejects_bad_numbers() {
        assert!(matches!(
            FaultPlan::none().with_loss(1.0).validate(),
            Err(FaultPlanError::InvalidLossProbability(_))
        ));
        assert!(matches!(
            FaultPlan::none().with_loss(f64::NAN).validate(),
            Err(FaultPlanError::InvalidLossProbability(_))
        ));
        assert!(matches!(
            FaultPlan::none().with_fail_stop(0, -1.0).validate(),
            Err(FaultPlanError::InvalidFailStopTime(_))
        ));
        assert!(matches!(
            FaultPlan::none().with_partition(0, 5.0, 5.0).validate(),
            Err(FaultPlanError::InvalidWindow { .. })
        ));
        assert!(matches!(
            FaultPlan::none().with_latency_spike(0, 1.0, 2.0, 0.0).validate(),
            Err(FaultPlanError::InvalidSpikeDelay(_))
        ));
        assert!(FaultPlan::none()
            .with_loss(0.5)
            .with_fail_stop(1, 0.0)
            .with_partition(0, 0.0, 1.0)
            .with_latency_spike(0, 1.0, 2.0, 0.1)
            .validate()
            .is_ok());
    }

    #[test]
    fn fail_stop_schedule_sorted_by_time_then_worker() {
        let plan =
            FaultPlan::none().with_fail_stop(5, 2.0).with_fail_stop(1, 1.0).with_fail_stop(0, 2.0);
        let sched = plan.fail_stop_schedule();
        assert_eq!(
            sched,
            vec![
                (1, SimTime::from_secs_f64(1.0)),
                (0, SimTime::from_secs_f64(2.0)),
                (5, SimTime::from_secs_f64(2.0)),
            ]
        );
    }

    #[test]
    fn partition_drops_both_directions_inside_window_only() {
        let plan = FaultPlan::none().with_partition(0, 1.0, 2.0);
        // Worker 0 is actor 1 in the usual layout.
        let mut hook = plan.link_faults(|w| w + 1);
        let ns = |s: f64| SimTime::from_secs_f64(s).as_nanos();
        assert_eq!(hook.intercept(&meta(0, 1, ns(1.5))), Verdict::Drop);
        assert_eq!(hook.intercept(&meta(1, 0, ns(1.5))), Verdict::Drop);
        assert_eq!(hook.intercept(&meta(0, 1, ns(0.5))), Verdict::Deliver);
        assert_eq!(hook.intercept(&meta(0, 1, ns(2.0))), Verdict::Deliver);
        // A different worker's link is untouched.
        assert_eq!(hook.intercept(&meta(0, 2, ns(1.5))), Verdict::Deliver);
    }

    #[test]
    fn latency_spike_delays_inside_window() {
        let plan = FaultPlan::none().with_latency_spike(1, 10.0, 11.0, 0.5);
        let mut hook = plan.link_faults(|w| w + 1);
        let ns = |s: f64| SimTime::from_secs_f64(s).as_nanos();
        assert_eq!(
            hook.intercept(&meta(0, 2, ns(10.25))),
            Verdict::Delay(SimTime::from_secs_f64(0.5))
        );
        assert_eq!(hook.intercept(&meta(0, 2, ns(9.0))), Verdict::Deliver);
    }

    #[test]
    fn loss_stream_is_deterministic_and_seed_sensitive() {
        let verdicts = |seed: u64| {
            let plan = FaultPlan::none().with_loss(0.5).with_seed(seed);
            let mut hook = plan.link_faults(|w| w + 1);
            (0..64)
                .map(|i| hook.intercept(&meta(0, 1, i * 1000)) == Verdict::Drop)
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(42), verdicts(42));
        assert_ne!(verdicts(42), verdicts(43));
        // p = 0.5 over 64 draws: both outcomes must occur.
        let v = verdicts(42);
        assert!(v.iter().any(|&b| b) && v.iter().any(|&b| !b));
    }

    #[test]
    fn loss_stream_position_independent_of_windows() {
        // The same seed must produce the same loss decisions whether or not
        // a partition also fires, so partition windows cannot shift which
        // later messages are lost.
        let plan_a = FaultPlan::none().with_loss(0.3).with_seed(9);
        let plan_b = plan_a.clone().with_partition(0, 0.0, 1e-3);
        let mut a = plan_a.link_faults(|w| w + 1);
        let mut b = plan_b.link_faults(|w| w + 1);
        // Messages after the partition window: verdicts must agree.
        for i in 0..64u64 {
            let m = meta(0, 1, 2_000_000 + i * 1000);
            assert_eq!(a.intercept(&m), b.intercept(&m));
        }
    }

    #[test]
    fn display_of_errors_mentions_offending_value() {
        let err = FaultPlan::none().with_loss(2.0).validate().unwrap_err();
        assert!(err.to_string().contains('2'));
    }
}

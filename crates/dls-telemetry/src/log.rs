//! Structured, leveled JSONL event log with the same
//! zero-cost-when-disabled contract as [`crate::Telemetry`].
//!
//! * [`Logger`] is a cheap, cloneable, `Send + Sync` handle. The disabled
//!   handle reduces every call to one `Option` branch: no clock read, no
//!   allocation, no lock — so instrumented code paths stay bit-identical
//!   to uninstrumented ones (pinned by `tests/log_determinism.rs` at the
//!   workspace root). The logger observes only *host* time; it never
//!   reads or advances the simulator's virtual clock.
//! * Every record gets a **monotonic sequence number** from one shared
//!   atomic, so interleavings across threads are totally ordered even
//!   when the host timestamp (millisecond resolution) ties.
//! * Records land in a **bounded ring buffer**: once `capacity` records
//!   are retained the oldest is evicted and tallied in
//!   [`Logger::dropped`]. [`Logger::to_jsonl`] renders the retained
//!   window for the file sink (`dls-repro` writes it through its
//!   `ArtifactSink` as a secondary artifact).
//!
//! # Line schema
//!
//! One JSON object per line, reserved keys first:
//!
//! ```json
//! {"seq":12,"t_ms":840,"level":"info","target":"campaign",
//!  "msg":"heartbeat","fields":{"done":64,"total":512,"eta_s":3.5}}
//! ```
//!
//! `seq`/`t_ms`/`level`/`target`/`msg` are always present; `fields` is an
//! optional object carrying event-specific data and is omitted when
//! empty. `repro report` validates exactly this shape.

use serde::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring capacity: generous for a CLI campaign, bounded for a
/// long-lived `repro serve` daemon.
pub const DEFAULT_LOG_CAPACITY: usize = 4096;

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic chatter.
    Debug,
    /// Normal progress events.
    Info,
    /// Degraded-but-continuing conditions (quarantines, softened I/O).
    Warn,
    /// Failures worth surfacing even from a truncated log window.
    Error,
}

impl Level {
    /// The lowercase wire name (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One structured log record.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// Monotonic sequence number, unique per logger.
    pub seq: u64,
    /// Host milliseconds since the logger was created.
    pub t_ms: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem that emitted the event (`"campaign"`, `"serve"`, ...).
    pub target: &'static str,
    /// Human-readable event name or message.
    pub message: String,
    /// Event-specific structured payload.
    pub fields: Vec<(&'static str, Value)>,
}

impl LogRecord {
    /// Renders the record as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut obj: Vec<(String, Value)> = vec![
            ("seq".into(), Value::U64(self.seq)),
            ("t_ms".into(), Value::U64(self.t_ms)),
            ("level".into(), Value::String(self.level.as_str().into())),
            ("target".into(), Value::String(self.target.into())),
            ("msg".into(), Value::String(self.message.clone())),
        ];
        if !self.fields.is_empty() {
            let fields = self.fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect();
            obj.push(("fields".into(), Value::Object(fields)));
        }
        serde_json::to_string(&Value::Object(obj)).expect("log serialization is infallible")
    }
}

struct LogCore {
    seq: AtomicU64,
    start: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

#[derive(Default)]
struct Ring {
    records: VecDeque<LogRecord>,
    dropped: u64,
}

/// The cloneable structured-log handle; see the module docs.
#[derive(Clone, Default)]
pub struct Logger {
    inner: Option<Arc<LogCore>>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger").field("enabled", &self.is_enabled()).finish()
    }
}

impl Logger {
    /// The no-op handle (also the `Default`): every call is one branch.
    pub fn disabled() -> Self {
        Logger { inner: None }
    }

    /// An enabled logger with the default ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_LOG_CAPACITY)
    }

    /// An enabled logger retaining at most `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Logger {
            inner: Some(Arc::new(LogCore {
                seq: AtomicU64::new(0),
                start: Instant::now(),
                capacity: capacity.max(1),
                ring: Mutex::new(Ring::default()),
            })),
        }
    }

    /// Whether a ring is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits one structured event. On a disabled handle this is a single
    /// branch: the message and fields are still *constructed* by the
    /// caller, so hot paths that need a `format!` should guard on
    /// [`Logger::is_enabled`] first.
    pub fn log(
        &self,
        level: Level,
        target: &'static str,
        message: &str,
        fields: &[(&'static str, Value)],
    ) {
        let Some(core) = &self.inner else { return };
        let record = LogRecord {
            seq: core.seq.fetch_add(1, Ordering::Relaxed),
            t_ms: core.start.elapsed().as_millis() as u64,
            level,
            target,
            message: message.to_string(),
            fields: fields.to_vec(),
        };
        let mut ring = core.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.records.len() >= core.capacity {
            ring.records.pop_front();
            ring.dropped = ring.dropped.saturating_add(1);
        }
        ring.records.push_back(record);
    }

    /// [`Logger::log`] at [`Level::Debug`].
    pub fn debug(&self, target: &'static str, message: &str, fields: &[(&'static str, Value)]) {
        self.log(Level::Debug, target, message, fields);
    }

    /// [`Logger::log`] at [`Level::Info`].
    pub fn info(&self, target: &'static str, message: &str, fields: &[(&'static str, Value)]) {
        self.log(Level::Info, target, message, fields);
    }

    /// [`Logger::log`] at [`Level::Warn`].
    pub fn warn(&self, target: &'static str, message: &str, fields: &[(&'static str, Value)]) {
        self.log(Level::Warn, target, message, fields);
    }

    /// [`Logger::log`] at [`Level::Error`].
    pub fn error(&self, target: &'static str, message: &str, fields: &[(&'static str, Value)]) {
        self.log(Level::Error, target, message, fields);
    }

    /// Clones the retained window, oldest first.
    pub fn recent(&self) -> Vec<LogRecord> {
        match &self.inner {
            Some(core) => {
                let ring = core.ring.lock().unwrap_or_else(|e| e.into_inner());
                ring.records.iter().cloned().collect()
            }
            None => Vec::new(),
        }
    }

    /// Records evicted from the ring since creation.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(core) => core.ring.lock().unwrap_or_else(|e| e.into_inner()).dropped,
            None => 0,
        }
    }

    /// Total records ever emitted (retained + dropped).
    pub fn emitted(&self) -> u64 {
        match &self.inner {
            Some(core) => core.seq.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Renders the retained window as JSONL (one record per line, oldest
    /// first, trailing newline). Empty string when nothing is retained.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.recent() {
            out.push_str(&record.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let log = Logger::disabled();
        assert!(!log.is_enabled());
        log.info("t", "hello", &[]);
        assert!(log.recent().is_empty());
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.emitted(), 0);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn sequence_numbers_are_monotonic_across_threads() {
        let log = Logger::with_capacity(10_000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let log = log.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        log.info("t", "e", &[]);
                    }
                });
            }
        });
        let mut seqs: Vec<u64> = log.recent().iter().map(|r| r.seq).collect();
        assert_eq!(seqs.len(), 400);
        seqs.sort_unstable();
        assert_eq!(seqs, (0..400).collect::<Vec<_>>(), "seqs are dense and unique");
        assert_eq!(log.emitted(), 400);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let log = Logger::with_capacity(3);
        for i in 0..5u64 {
            log.info("t", &format!("e{i}"), &[]);
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        // Oldest two were evicted; the window holds the newest records.
        assert_eq!(recent[0].message, "e2");
        assert_eq!(recent[2].message, "e4");
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.emitted(), 5);
    }

    #[test]
    fn jsonl_lines_parse_with_reserved_keys_and_fields() {
        let log = Logger::enabled();
        log.warn("campaign", "quarantined", &[("run", Value::U64(3))]);
        log.info("serve", "plain", &[]);
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("seq").and_then(Value::as_f64), Some(0.0));
        assert_eq!(first.get("level").and_then(Value::as_str), Some("warn"));
        assert_eq!(first.get("target").and_then(Value::as_str), Some("campaign"));
        assert_eq!(first.get("msg").and_then(Value::as_str), Some("quarantined"));
        assert_eq!(
            first.get("fields").and_then(|f| f.get("run")).and_then(Value::as_f64),
            Some(3.0)
        );
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert!(second.get("fields").is_none(), "empty fields object is omitted");
        assert!(second.get("t_ms").is_some());
    }

    #[test]
    fn levels_order_and_name() {
        assert!(Level::Debug < Level::Info && Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Error.as_str(), "error");
    }

    #[test]
    fn clones_share_one_ring() {
        let log = Logger::enabled();
        let log2 = log.clone();
        log.info("a", "x", &[]);
        log2.info("b", "y", &[]);
        assert_eq!(log.recent().len(), 2);
        assert_eq!(log2.recent()[1].seq, 1);
    }
}

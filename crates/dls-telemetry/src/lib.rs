//! Host-side telemetry: a lock-cheap metrics registry and scoped timers.
//!
//! `dls-trace` observes the *simulated* (virtual-time) world; this crate
//! observes the *host-side* execution cost of running those simulations —
//! the quantity the `repro bench` perf harness tracks PR-over-PR. It
//! follows the same zero-cost-when-disabled pattern as `dls_trace::Tracer`:
//!
//! * [`Telemetry`] — the cheap, cloneable, `Send + Sync` handle threaded
//!   through the campaign runner and the simulator entry points. A disabled
//!   handle ([`Telemetry::disabled`]) reduces every hook to one `Option`
//!   branch: no clock is read, nothing allocates, nothing locks, and the
//!   simulation outputs stay bit-identical to uninstrumented runs (pinned
//!   by `tests/telemetry_determinism.rs` at the workspace root).
//! * Monotonic **counters** (saturating `u64`), last-write-wins **gauges**
//!   and **histograms** with fixed log-spaced buckets. Histograms keep the
//!   raw observations, so percentiles computed at [`Telemetry::snapshot`]
//!   time are *exact*, not bucket-interpolated.
//! * [`Span`] — a drop guard that times a scope on the wall clock and
//!   records the elapsed seconds into a histogram.
//! * Per-thread **shards**: each recording thread writes to its own shard
//!   (an uncontended mutex — one CAS), so `run_campaign` workers never
//!   contend on a shared line. [`Telemetry::snapshot`] merges all shards.
//! * [`Logger`] — a structured, leveled JSONL event log (monotonic
//!   sequence numbers, bounded ring buffer) with the same
//!   zero-cost-when-disabled contract.
//! * [`to_prometheus_text`] — the Prometheus text-exposition encoding of
//!   a [`Snapshot`], shared by the CLI artifact writer and the campaign
//!   service's `GET /metrics`.
//!
//! # Example
//!
//! ```
//! use dls_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! tel.counter_add("runs", 3);
//! tel.observe_secs("run_wall_s", 0.25);
//! {
//!     let _span = tel.span("scope_wall_s"); // records on drop
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("runs"), Some(3));
//! assert_eq!(snap.histogram("run_wall_s").unwrap().count, 1);
//!
//! // A disabled handle never reads the clock or allocates.
//! let off = Telemetry::disabled();
//! off.counter_add("runs", 1);
//! assert!(off.snapshot().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod log;
mod prom;
mod registry;
mod snapshot;

pub use hist::{bucket_le, exact_percentile, BUCKETS, MAX_SAMPLES};
pub use log::{Level, LogRecord, Logger, DEFAULT_LOG_CAPACITY};
pub use prom::{
    escape_label_value, parse_prometheus_text, sanitize_metric_name, to_prometheus_text, PromSample,
};
pub use snapshot::{BucketCount, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};

use registry::Registry;
use std::sync::Arc;
use std::time::Instant;

/// The cloneable telemetry handle.
///
/// Clones share one registry; recording from any thread lands in that
/// thread's shard of the shared registry. The handle is `Send + Sync`, so
/// one instance can be captured by every worker closure of a campaign.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.is_enabled()).finish()
    }
}

impl Telemetry {
    /// The no-op handle (also the `Default`): every operation is one branch.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A handle backed by a fresh, empty registry.
    pub fn enabled() -> Self {
        Telemetry { inner: Some(Arc::new(Registry::new())) }
    }

    /// Whether a registry is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the named monotonic counter.
    ///
    /// Counters saturate at `u64::MAX` instead of wrapping: a long-running
    /// process reports a pegged counter rather than a small bogus value.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(reg) = &self.inner {
            reg.with_shard(|shard| {
                let c = shard.counters.entry(name).or_insert(0);
                *c = c.saturating_add(delta);
            });
        }
    }

    /// Increments the named counter by one.
    pub fn counter_inc(&self, name: &'static str) {
        self.counter_add(name, 1);
    }

    /// Sets the named gauge (last write wins, across all threads).
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if let Some(reg) = &self.inner {
            let seq = reg.next_gauge_seq();
            reg.with_shard(|shard| {
                shard.gauges.insert(name, (seq, value));
            });
        }
    }

    /// Records one observation (in seconds for wall-clock histograms,
    /// though any non-negative unit works) into the named histogram.
    ///
    /// NaN observations are counted separately (`nan_count`) and excluded
    /// from the buckets, the moments and the percentiles — mirroring the
    /// workspace NaN policy in `dls-metrics`.
    pub fn observe_secs(&self, name: &'static str, value: f64) {
        if let Some(reg) = &self.inner {
            reg.with_shard(|shard| {
                shard.histograms.entry(name).or_default().record(value);
            });
        }
    }

    /// Starts a scoped wall-clock timer that records the elapsed seconds
    /// into histogram `name` when dropped. When disabled, the clock is
    /// never read.
    pub fn span(&self, name: &'static str) -> Span {
        Span { telemetry: self.clone(), name, start: self.inner.as_ref().map(|_| Instant::now()) }
    }

    /// Aggregates every per-thread shard into one deterministic snapshot
    /// (metrics sorted by name). Recording may continue afterwards; the
    /// snapshot is a consistent point-in-time merge, not a reset.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(reg) => reg.snapshot(),
            None => Snapshot::default(),
        }
    }
}

/// Scoped wall-clock timer; see [`Telemetry::span`].
///
/// Dropping the span records the elapsed time. Use [`Span::finish`] to end
/// it explicitly mid-scope.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    telemetry: Telemetry,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Ends the span now, recording the elapsed seconds.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.telemetry.observe_secs(self.name, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter_add("c", 5);
        t.gauge_set("g", 1.0);
        t.observe_secs("h", 0.5);
        t.span("s").finish();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn counters_accumulate_and_saturate() {
        let t = Telemetry::enabled();
        t.counter_add("a", 2);
        t.counter_inc("a");
        t.counter_add("b", u64::MAX);
        t.counter_add("b", 10); // must saturate, not wrap
        let s = t.snapshot();
        assert_eq!(s.counter("a"), Some(3));
        assert_eq!(s.counter("b"), Some(u64::MAX));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let t = Telemetry::enabled();
        t.gauge_set("g", 1.0);
        t.gauge_set("g", 7.5);
        assert_eq!(t.snapshot().gauge("g"), Some(7.5));
    }

    #[test]
    fn histogram_moments_and_exact_percentiles() {
        let t = Telemetry::enabled();
        for v in [1.0, 2.0, 3.0, 4.0] {
            t.observe_secs("h", v);
        }
        let s = t.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 4.0);
        assert!((h.mean - 2.5).abs() < 1e-12);
        // Exact (sample-based) percentiles, not bucket midpoints.
        assert!((h.p50 - 2.5).abs() < 1e-12);
        assert_eq!(h.p10, 1.3);
        assert!((h.p90 - 3.7).abs() < 1e-12);
        let bucket_total: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_total, 4);
    }

    #[test]
    fn histogram_counts_nan_separately() {
        let t = Telemetry::enabled();
        t.observe_secs("h", 1.0);
        t.observe_secs("h", f64::NAN);
        let s = t.snapshot();
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.nan_count, 1);
        assert_eq!(h.p50, 1.0);
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t.counter_inc("c");
        t2.counter_inc("c");
        assert_eq!(t.snapshot().counter("c"), Some(2));
    }

    #[test]
    fn shards_merge_across_threads() {
        let t = Telemetry::enabled();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        t.counter_inc("runs");
                    }
                    t.observe_secs("wall", i as f64 + 1.0);
                });
            }
        });
        let s = t.snapshot();
        assert_eq!(s.counter("runs"), Some(400));
        let h = s.histogram("wall").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 4.0);
        assert!((h.mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn two_registries_do_not_bleed_into_each_other() {
        let a = Telemetry::enabled();
        let b = Telemetry::enabled();
        a.counter_inc("x");
        b.counter_add("x", 10);
        assert_eq!(a.snapshot().counter("x"), Some(1));
        assert_eq!(b.snapshot().counter("x"), Some(10));
    }

    #[test]
    fn span_records_nonnegative_elapsed() {
        let t = Telemetry::enabled();
        {
            let _span = t.span("scope");
        }
        let s = t.snapshot();
        let h = s.histogram("scope").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.min >= 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_json_round_trips() {
        let t = Telemetry::enabled();
        t.counter_inc("z");
        t.counter_inc("a");
        t.gauge_set("m", 2.0);
        t.observe_secs("h", 0.125);
        let s = t.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "z"]);
        let json = s.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back.counter("a"), Some(1));
        assert_eq!(back.gauge("m"), Some(2.0));
        assert_eq!(back.histogram("h").unwrap().count, 1);
    }
}

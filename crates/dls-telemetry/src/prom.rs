//! Prometheus text-exposition (format version 0.0.4) encoding of a
//! [`Snapshot`], plus a strict parser used for round-trip sanity checks.
//!
//! One encoder serves both the CLI (`--telemetry-prom`) and the campaign
//! service (`GET /metrics`), so the two surfaces can never drift apart.
//! Mapping rules:
//!
//! * metric names are sanitized to the Prometheus charset
//!   (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character — notably the
//!   `.` namespace separator this workspace uses — becomes `_`;
//! * counters gain the conventional `_total` suffix;
//! * histograms emit **cumulative** `_bucket{le="..."}` series ending in
//!   the mandatory `le="+Inf"` bucket, plus `_sum` and `_count`;
//! * label values are escaped per the exposition format (`\\`, `\"`,
//!   `\n`).

use crate::snapshot::Snapshot;
use std::fmt::Write as _;

/// Sanitizes a workspace metric name (`serve.cache_hits`) into the
/// Prometheus name charset (`serve_cache_hits`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
            continue;
        }
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || c.is_ascii_digit();
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the text exposition format: backslash, double
/// quote and newline must be escaped; everything else passes through.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a sample value. Prometheus accepts any Go-parseable float;
/// `{:?}` gives the shortest round-trip rendering (`0.5`, `1e-6`, `12`→`12.0`).
fn fmt_value(v: f64) -> String {
    if v == f64::MAX || v.is_infinite() && v > 0.0 {
        "+Inf".into()
    } else if v.is_infinite() {
        "-Inf".into()
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v:?}")
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Metric families appear in snapshot order (sorted by name within each
/// kind), each preceded by its `# TYPE` header, so the output for a given
/// snapshot is deterministic.
pub fn to_prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let mut name = sanitize_metric_name(&c.name);
        if !name.ends_with("_total") {
            name.push_str("_total");
        }
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snap.gauges {
        let name = sanitize_metric_name(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(g.value));
    }
    for h in &snap.histograms {
        let name = sanitize_metric_name(&h.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for b in &h.buckets {
            // The overflow bucket exports `le = f64::MAX` in JSON; in
            // Prometheus it *is* the +Inf bucket, emitted below.
            if b.le == f64::MAX {
                continue;
            }
            cumulative += b.count;
            let le = escape_label_value(&fmt_value(b.le));
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum));
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

/// One parsed sample line of a text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sanitized metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs, unescaped, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Strict parser for the subset of the text exposition format the encoder
/// emits. Comment (`#`) and blank lines are skipped; any malformed sample
/// line is an error. Used by tests and `repro report` to sanity-check that
/// scraped output really is Prometheus text format.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", lineno + 1))?;
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse::<f64>().map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?,
        };
        let (name, labels) =
            parse_series(series).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if name.is_empty() || !name.chars().enumerate().all(valid_name_char) {
            return Err(format!("line {}: invalid metric name {name:?}", lineno + 1));
        }
        samples.push(PromSample { name, labels, value });
    }
    Ok(samples)
}

fn valid_name_char((i, c): (usize, char)) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
}

/// Splits `name{k="v",...}` into the name and its unescaped labels.
fn parse_series(series: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(brace) = series.find('{') else {
        return Ok((series.to_string(), Vec::new()));
    };
    let name = series[..brace].to_string();
    let rest = &series[brace + 1..];
    let body = rest.strip_suffix('}').ok_or_else(|| format!("unterminated labels: {series:?}"))?;
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    while chars.peek().is_some() {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label value must be quoted in {series:?}"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in {series:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {series:?}")),
            }
        }
        if let Some(',') = chars.peek() {
            chars.next();
        }
        labels.push((key, value));
    }
    Ok((name, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{BucketCount, CounterSnapshot, GaugeSnapshot, HistogramSnapshot};

    fn representative() -> Snapshot {
        Snapshot {
            counters: vec![CounterSnapshot { name: "serve.requests".into(), value: 6 }],
            gauges: vec![GaugeSnapshot { name: "serve.workers_busy".into(), value: 2.0 }],
            histograms: vec![HistogramSnapshot {
                name: "serve.warm_s".into(),
                count: 3,
                nan_count: 0,
                dropped_samples: 0,
                sum: 0.0111,
                min: 0.0001,
                max: 0.01,
                mean: 0.0037,
                p10: 0.0001,
                p50: 0.001,
                p90: 0.01,
                p99: 0.01,
                buckets: vec![
                    BucketCount { le: 1e-4, count: 1 },
                    BucketCount { le: 1e-3, count: 1 },
                    BucketCount { le: 1e-2, count: 1 },
                ],
            }],
        }
    }

    /// Golden pin of the full text exposition for a representative
    /// snapshot: counter (`_total` suffix), gauge, histogram with
    /// *cumulative* buckets and the `+Inf`/`_sum`/`_count` tail, and `.`
    /// sanitized to `_` throughout.
    #[test]
    fn golden_text_exposition() {
        let expected = "\
# TYPE serve_requests_total counter
serve_requests_total 6
# TYPE serve_workers_busy gauge
serve_workers_busy 2.0
# TYPE serve_warm_s histogram
serve_warm_s_bucket{le=\"0.0001\"} 1
serve_warm_s_bucket{le=\"0.001\"} 2
serve_warm_s_bucket{le=\"0.01\"} 3
serve_warm_s_bucket{le=\"+Inf\"} 3
serve_warm_s_sum 0.0111
serve_warm_s_count 3
";
        assert_eq!(to_prometheus_text(&representative()), expected);
    }

    #[test]
    fn parse_back_round_trips_the_encoder() {
        let text = to_prometheus_text(&representative());
        let samples = parse_prometheus_text(&text).unwrap();
        // 1 counter + 1 gauge + (3 finite + Inf) buckets + sum + count.
        assert_eq!(samples.len(), 8);
        let get = |name: &str| samples.iter().find(|s| s.name == name).unwrap();
        assert_eq!(get("serve_requests_total").value, 6.0);
        assert_eq!(get("serve_workers_busy").value, 2.0);
        assert_eq!(get("serve_warm_s_count").value, 3.0);
        let inf = samples
            .iter()
            .find(|s| s.name == "serve_warm_s_bucket" && s.labels == [("le".into(), "+Inf".into())])
            .unwrap();
        assert_eq!(inf.value, 3.0);
        // Cumulative buckets are non-decreasing and end at the count.
        let buckets: Vec<f64> =
            samples.iter().filter(|s| s.name == "serve_warm_s_bucket").map(|s| s.value).collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn overflow_bucket_folds_into_inf() {
        let snap = Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                count: 2,
                nan_count: 0,
                dropped_samples: 0,
                sum: 1e9,
                min: 0.5,
                max: 1e9,
                mean: 5e8,
                p10: 0.5,
                p50: 0.5,
                p90: 1e9,
                p99: 1e9,
                buckets: vec![
                    BucketCount { le: 1.0, count: 1 },
                    // JSON rendering of the overflow bucket.
                    BucketCount { le: f64::MAX, count: 1 },
                ],
            }],
        };
        let text = to_prometheus_text(&snap);
        assert!(text.contains("h_bucket{le=\"1.0\"} 1\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 2\n"));
        assert!(!text.contains("e308"), "f64::MAX must never leak as a bound:\n{text}");
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let nasty = "a\\b\"c\nd";
        let escaped = escape_label_value(nasty);
        assert_eq!(escaped, "a\\\\b\\\"c\\nd");
        let line = format!("m{{path=\"{escaped}\"}} 1\n");
        let samples = parse_prometheus_text(&line).unwrap();
        assert_eq!(samples[0].labels, vec![("path".into(), nasty.into())]);
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(sanitize_metric_name("serve.cache_hits"), "serve_cache_hits");
        assert_eq!(sanitize_metric_name("campaign.run_wall_s"), "campaign_run_wall_s");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus_text("no_value_here").is_err());
        assert!(parse_prometheus_text("bad{le=\"1.0\" 2").is_err());
        assert!(parse_prometheus_text("bad{le=unquoted} 2").is_err());
        assert!(parse_prometheus_text("na me 2").is_err());
        assert!(parse_prometheus_text("# comment only\n\n").unwrap().is_empty());
    }

    #[test]
    fn empty_snapshot_encodes_to_empty_text() {
        assert_eq!(to_prometheus_text(&Snapshot::default()), "");
    }
}

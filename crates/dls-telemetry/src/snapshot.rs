//! Point-in-time aggregated view of a registry, serializable to JSON.

use crate::hist::{bucket_le, exact_percentile, HistData};
use serde::{Deserialize, Serialize};

/// One counter's merged value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Merged (summed, saturating) value across all shards.
    pub value: u64,
}

/// One gauge's merged value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last value written across all shards.
    pub value: f64,
}

/// One log-spaced bucket of a histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket, seconds. The overflow bucket
    /// exports `f64::MAX` (JSON cannot represent infinity).
    pub le: f64,
    /// Observations in the bucket.
    pub count: u64,
}

/// One histogram's merged summary: moments, sample percentiles and the
/// non-empty buckets.
///
/// Percentiles are *exact* while the raw-sample store is under
/// [`crate::MAX_SAMPLES`] observations (`dropped_samples == 0`). Past the
/// cap they are computed over the first `MAX_SAMPLES` retained samples —
/// an estimate biased toward the early distribution — while `count`,
/// `sum`, `min`, `max`, `mean` and the buckets stay exact for all
/// observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Non-NaN observations.
    pub count: u64,
    /// NaN observations (excluded from everything else).
    pub nan_count: u64,
    /// Observations not retained for percentile computation because the
    /// raw-sample cap ([`crate::MAX_SAMPLES`]) was hit. Non-zero means the
    /// percentiles below are estimates, not exact.
    #[serde(default)]
    pub dropped_samples: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Exact 10th percentile of the raw samples.
    pub p10: f64,
    /// Exact median of the raw samples.
    pub p50: f64,
    /// Exact 90th percentile of the raw samples.
    pub p90: f64,
    /// Exact 99th percentile of the raw samples.
    pub p99: f64,
    /// Non-empty buckets only, in ascending bound order.
    pub buckets: Vec<BucketCount>,
}

/// Merged view of every metric in a registry; see `Telemetry::snapshot`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// True when no metric was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// All counters whose name starts with `prefix`, in name order.
    /// Namespaced counter families (`journal.*`, `campaign.*`, `msgsim.*`)
    /// can be summarized as a group without enumerating every member.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| (c.name.as_str(), c.value))
            .collect()
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Pretty JSON rendering (the `--telemetry-json` artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }

    /// Parses a snapshot back from its JSON rendering.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid telemetry snapshot: {e}"))
    }
}

/// Builds the exported summary for one merged histogram.
pub(crate) fn summarize(name: &'static str, h: &HistData) -> HistogramSnapshot {
    let mut sorted = h.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are NaN-free"));
    let pct = |q: f64| if sorted.is_empty() { 0.0 } else { exact_percentile(&sorted, q) };
    HistogramSnapshot {
        name: name.into(),
        count: h.count,
        nan_count: h.nan_count,
        dropped_samples: h.dropped_samples,
        sum: h.sum,
        min: if h.count == 0 { 0.0 } else { h.min },
        max: if h.count == 0 { 0.0 } else { h.max },
        mean: if h.count == 0 { 0.0 } else { h.sum / h.count as f64 },
        p10: pct(10.0),
        p50: pct(50.0),
        p90: pct(90.0),
        p99: pct(99.0),
        buckets: h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(i, &count)| BucketCount { le: bucket_le(i).min(f64::MAX), count })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let s = summarize("empty", &HistData::default());
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p50, 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn counters_with_prefix_selects_a_namespace() {
        let snap = Snapshot {
            counters: vec![
                CounterSnapshot { name: "campaign.runs_started".into(), value: 10 },
                CounterSnapshot { name: "journal.runs_recorded".into(), value: 4 },
                CounterSnapshot { name: "journal.runs_skipped".into(), value: 6 },
            ],
            gauges: vec![],
            histograms: vec![],
        };
        let journal = snap.counters_with_prefix("journal.");
        assert_eq!(journal, vec![("journal.runs_recorded", 4), ("journal.runs_skipped", 6)]);
        assert!(snap.counters_with_prefix("nope.").is_empty());
    }

    #[test]
    fn overflow_bucket_round_trips_through_json() {
        let mut h = HistData::default();
        h.record(1e9); // beyond the last finite bound
        let s = summarize("big", &h);
        assert_eq!(s.buckets.len(), 1);
        // Infinity is not representable in JSON, so the overflow bound is
        // exported as f64::MAX and must survive a round trip.
        assert_eq!(s.buckets[0].le, f64::MAX);
        let snap = Snapshot { counters: vec![], gauges: vec![], histograms: vec![s] };
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.histogram("big").unwrap().buckets[0].count, 1);
    }
}

//! Histogram storage: fixed log-spaced buckets plus the raw observations
//! (for exact percentiles at export time).

/// Number of finite histogram buckets. Bucket `i` covers
/// `(bucket_le(i-1), bucket_le(i)]`; one extra overflow bucket catches
/// everything above [`bucket_le`]`(BUCKETS - 1)`.
pub const BUCKETS: usize = 40;

/// Hard cap on raw observations retained per histogram (per shard, and
/// again after the cross-shard merge).
///
/// The moments (`count`/`sum`/`min`/`max`/`mean`) and the log-spaced
/// buckets keep counting *every* observation forever; only the raw-sample
/// vector backing the exact percentiles is bounded, so a long-running
/// `repro serve` daemon cannot grow memory without bound. Once the cap is
/// hit, later observations are tallied in `dropped_samples` and the
/// exported percentiles become an estimate over the first
/// `MAX_SAMPLES` observations rather than the exact all-time values —
/// acceptable because every workload in this workspace either finishes
/// well under the cap (CLI campaigns) or is dominated by its steady-state
/// early distribution (the serve daemon). Bucket counts stay exact, so
/// coarse log-bucket quantiles remain available past the cap.
pub const MAX_SAMPLES: usize = 8192;

/// Lowest finite bucket upper bound, seconds (1 µs).
const BASE: f64 = 1e-6;
/// Log-spacing growth factor: four buckets per decade, so 40 buckets span
/// 1 µs … 10 ks — wider than any wall time this workspace produces.
const GROWTH: f64 = 1.778_279_410_038_922_8; // 10^(1/4)

/// Upper bound (inclusive) of finite bucket `i`, seconds.
///
/// The overflow bucket (index [`BUCKETS`]) reports `f64::INFINITY`.
pub fn bucket_le(i: usize) -> f64 {
    if i >= BUCKETS {
        f64::INFINITY
    } else {
        BASE * GROWTH.powi(i as i32)
    }
}

/// Bucket index for observation `v` (NaN must be filtered by the caller).
pub(crate) fn bucket_index(v: f64) -> usize {
    if v <= BASE {
        return 0;
    }
    // ceil(log_GROWTH(v / BASE)), then correct for log/pow rounding in
    // *both* directions. The rounding guard must also cover the overflow
    // classification: a value just below `bucket_le(BUCKETS - 1)` whose
    // `log10` rounds up past `BUCKETS` belongs in the last finite bucket,
    // not the overflow one — so walk back down from `BUCKETS` against the
    // exact bounds before accepting overflow.
    let idx = ((v / BASE).log10() * 4.0).ceil();
    let mut i = if idx < 0.0 { 0 } else { (idx as usize).min(BUCKETS) };
    while i > 0 && v <= bucket_le(i - 1) {
        i -= 1;
    }
    while i < BUCKETS && v > bucket_le(i) {
        i += 1;
    }
    i
}

/// Exact percentile (linear interpolation between closest ranks) of a
/// sorted, NaN-free sample — the same semantics as
/// `dls_metrics::percentile`, reimplemented here so the telemetry crate
/// stays dependency-free.
///
/// # Panics
/// On an empty slice or `q` outside `[0, 100]`.
pub fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&q), "q must be in [0, 100]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (q / 100.0) * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// One histogram's shard-local state.
#[derive(Debug, Clone)]
pub(crate) struct HistData {
    pub count: u64,
    pub nan_count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// Finite buckets plus one overflow bucket.
    pub buckets: Vec<u64>,
    /// Raw observations (NaN excluded) for exact percentiles at export,
    /// capped at [`MAX_SAMPLES`]; overflow is tallied in `dropped_samples`.
    pub samples: Vec<f64>,
    /// Observations not retained in `samples` because the cap was hit.
    pub dropped_samples: u64,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            count: 0,
            nan_count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; BUCKETS + 1],
            samples: Vec::new(),
            dropped_samples: 0,
        }
    }
}

impl HistData {
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            self.nan_count = self.nan_count.saturating_add(1);
            return;
        }
        self.count = self.count.saturating_add(1);
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(v);
        } else {
            self.dropped_samples = self.dropped_samples.saturating_add(1);
        }
    }

    /// Merges another shard's state into this one. The merged sample set is
    /// capped at [`MAX_SAMPLES`] too; anything over the cap moves into
    /// `dropped_samples`.
    pub fn merge(&mut self, other: &HistData) {
        self.count = self.count.saturating_add(other.count);
        self.nan_count = self.nan_count.saturating_add(other.nan_count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        let room = MAX_SAMPLES.saturating_sub(self.samples.len());
        let take = other.samples.len().min(room);
        self.samples.extend_from_slice(&other.samples[..take]);
        self.dropped_samples = self
            .dropped_samples
            .saturating_add(other.dropped_samples)
            .saturating_add((other.samples.len() - take) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_log_spaced() {
        assert!((bucket_le(0) - 1e-6).abs() < 1e-18);
        // Four buckets per decade: bound 4 is one decade up.
        assert!((bucket_le(4) / bucket_le(0) - 10.0).abs() < 1e-9);
        assert!(bucket_le(BUCKETS).is_infinite());
        for i in 1..BUCKETS {
            assert!(bucket_le(i) > bucket_le(i - 1));
        }
    }

    #[test]
    fn bucket_index_respects_bounds() {
        for i in 0..BUCKETS {
            let bound = bucket_le(i);
            assert_eq!(bucket_index(bound), i, "bound of bucket {i} must land in it");
            assert!(bucket_index(bound * 1.000001) > i || i == BUCKETS - 1);
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS);
        assert_eq!(bucket_index(1e9), BUCKETS);
    }

    /// Smallest f64 strictly greater than `v` (Rust 1.75 lacks `f64::next_up`).
    fn next_up(v: f64) -> f64 {
        f64::from_bits(v.to_bits() + 1)
    }

    /// Largest f64 strictly smaller than `v`.
    fn next_down(v: f64) -> f64 {
        f64::from_bits(v.to_bits() - 1)
    }

    #[test]
    fn bucket_index_is_exact_at_every_edge() {
        for i in 0..BUCKETS {
            let bound = bucket_le(i);
            // The bound itself is inclusive: it belongs to bucket i.
            assert_eq!(bucket_index(bound), i, "le({i}) must land in bucket {i}");
            // One ulp below stays at or below bucket i (bucket i for i >= 1;
            // i == 0 also absorbs everything <= BASE).
            let lo = bucket_index(next_down(bound));
            assert!(lo <= i, "next_down(le({i})) classified above its bucket");
            if i >= 1 {
                assert_eq!(lo, i, "next_down(le({i})) must stay in bucket {i}");
            }
            // One ulp above crosses into the next bucket — including the
            // overflow bucket for the last finite edge.
            assert_eq!(
                bucket_index(next_up(bound)),
                i + 1,
                "next_up(le({i})) must land in bucket {}",
                i + 1
            );
        }
    }

    #[test]
    fn last_finite_edge_is_not_misclassified_as_overflow() {
        // Regression: the rounding guard must also apply when ceil(log10)
        // lands at or past BUCKETS. Values at and just below the last finite
        // bound belong in bucket BUCKETS-1, never the overflow bucket.
        let last = bucket_le(BUCKETS - 1);
        assert_eq!(bucket_index(last), BUCKETS - 1);
        assert_eq!(bucket_index(next_down(last)), BUCKETS - 1);
        assert_eq!(bucket_index(next_up(last)), BUCKETS);
    }

    #[test]
    fn percentile_matches_metrics_crate_semantics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exact_percentile(&xs, 0.0), 1.0);
        assert_eq!(exact_percentile(&xs, 100.0), 4.0);
        assert!((exact_percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(exact_percentile(&[42.0], 73.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        exact_percentile(&[], 50.0);
    }

    #[test]
    fn sample_retention_is_capped_with_drop_accounting() {
        let mut h = HistData::default();
        for i in 0..(MAX_SAMPLES + 100) {
            h.record(i as f64 * 1e-6);
        }
        // Moments and buckets keep counting every observation...
        assert_eq!(h.count, (MAX_SAMPLES + 100) as u64);
        assert_eq!(h.buckets.iter().sum::<u64>(), (MAX_SAMPLES + 100) as u64);
        assert_eq!(h.max, (MAX_SAMPLES + 99) as f64 * 1e-6);
        // ...while the raw-sample vector stops at the cap.
        assert_eq!(h.samples.len(), MAX_SAMPLES);
        assert_eq!(h.dropped_samples, 100);
    }

    #[test]
    fn merge_respects_the_sample_cap() {
        let mut a = HistData::default();
        let mut b = HistData::default();
        for _ in 0..(MAX_SAMPLES - 10) {
            a.record(1.0);
        }
        for _ in 0..50 {
            b.record(2.0);
        }
        a.merge(&b);
        assert_eq!(a.samples.len(), MAX_SAMPLES);
        assert_eq!(a.dropped_samples, 40, "overflow past the cap is tallied");
        assert_eq!(a.count, (MAX_SAMPLES - 10 + 50) as u64, "count is exact regardless");
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = HistData::default();
        let mut b = HistData::default();
        a.record(1.0);
        a.record(f64::NAN);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.nan_count, 1);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.samples.len(), 2);
        assert_eq!(a.buckets.iter().sum::<u64>(), 2);
    }
}

//! The sharded registry: one shard per recording thread, merged at
//! snapshot time.
//!
//! Recording locks only the calling thread's own shard — an uncontended
//! mutex, i.e. one compare-and-swap — so campaign worker threads never
//! serialize on a shared line. The snapshot path takes the registry lock
//! plus each shard lock briefly, which is fine for its once-per-command
//! call frequency.

use crate::hist::HistData;
use crate::snapshot::{CounterSnapshot, GaugeSnapshot, Snapshot};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Process-wide registry id source, used to key the thread-local shard
/// cache (several registries can be live at once, e.g. in tests).
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's shard per live registry: `(registry id, shard)`.
    /// Weak, so dropping a registry frees its shards even while threads
    /// that recorded into it are still alive.
    static TLS_SHARDS: RefCell<Vec<(u64, Weak<Shard>)>> = const { RefCell::new(Vec::new()) };
}

#[derive(Default)]
pub(crate) struct Shard {
    data: Mutex<ShardData>,
}

#[derive(Default)]
pub(crate) struct ShardData {
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge value tagged with a registry-global sequence number so the
    /// cross-shard merge is genuinely last-write-wins.
    pub gauges: BTreeMap<&'static str, (u64, f64)>,
    pub histograms: BTreeMap<&'static str, HistData>,
}

pub(crate) struct Registry {
    id: u64,
    shards: Mutex<Vec<Arc<Shard>>>,
    gauge_seq: AtomicU64,
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            shards: Mutex::new(Vec::new()),
            gauge_seq: AtomicU64::new(0),
        }
    }

    pub fn next_gauge_seq(&self) -> u64 {
        self.gauge_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Runs `f` on the calling thread's shard, creating and registering it
    /// on first use.
    pub fn with_shard<R>(&self, f: impl FnOnce(&mut ShardData) -> R) -> R {
        TLS_SHARDS.with(|cell| {
            let mut cache = cell.borrow_mut();
            if let Some((_, weak)) = cache.iter().find(|(id, _)| *id == self.id) {
                if let Some(shard) = weak.upgrade() {
                    // A panic mid-record leaves plain data records in a
                    // valid (if partial) state — recover, don't cascade.
                    return f(&mut shard.data.lock().unwrap_or_else(|e| e.into_inner()));
                }
            }
            // First record from this thread (or the registry of a stale
            // entry died): prune dead entries, create and register a shard.
            cache.retain(|(_, weak)| weak.strong_count() > 0);
            let shard = Arc::new(Shard::default());
            self.shards.lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&shard));
            cache.push((self.id, Arc::downgrade(&shard)));
            let mut guard = shard.data.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut guard)
        })
    }

    /// Merges all shards into one deterministic, name-sorted snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<&'static str, (u64, f64)> = BTreeMap::new();
        let mut hists: BTreeMap<&'static str, HistData> = BTreeMap::new();
        for shard in shards.iter() {
            let data = shard.data.lock().unwrap_or_else(|e| e.into_inner());
            for (name, v) in &data.counters {
                let c = counters.entry(name).or_insert(0);
                *c = c.saturating_add(*v);
            }
            for (name, (seq, v)) in &data.gauges {
                match gauges.get(name) {
                    Some((best, _)) if best > seq => {}
                    _ => {
                        gauges.insert(name, (*seq, *v));
                    }
                }
            }
            for (name, h) in &data.histograms {
                hists.entry(name).or_default().merge(h);
            }
        }
        Snapshot {
            counters: counters
                .into_iter()
                .map(|(name, value)| CounterSnapshot { name: name.into(), value })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(name, (_, value))| GaugeSnapshot { name: name.into(), value })
                .collect(),
            histograms: hists
                .into_iter()
                .map(|(name, h)| crate::snapshot::summarize(name, &h))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Poisons `m` by panicking while holding its guard.
    fn poison<T>(m: &Mutex<T>) {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison for test");
        }));
        assert!(caught.is_err());
        assert!(m.is_poisoned());
    }

    #[test]
    fn poisoned_shard_lock_still_records_and_snapshots() {
        let reg = Registry::new();
        reg.with_shard(|d| *d.counters.entry("c").or_insert(0) += 1);
        // Poison the shard this thread just registered.
        let shard = {
            let shards = reg.shards.lock().unwrap();
            Arc::clone(&shards[0])
        };
        poison(&shard.data);
        // Recording and snapshotting must both recover rather than cascade.
        reg.with_shard(|d| *d.counters.entry("c").or_insert(0) += 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(2));
    }

    #[test]
    fn poisoned_registry_lock_still_accepts_new_shards() {
        let reg = Registry::new();
        poison(&reg.shards);
        // First record from this thread pushes a new shard through the
        // (poisoned) registry lock.
        reg.with_shard(|d| *d.counters.entry("k").or_insert(0) += 3);
        assert_eq!(reg.snapshot().counter("k"), Some(3));
    }
}

//! Per-PE timeline extraction and CSV export.

use crate::{TraceEvent, TraceKind};

/// One busy interval on one PE: a chunk execution from start to completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeInterval {
    /// Executing PE index.
    pub pe: usize,
    /// Execution start, virtual seconds.
    pub start: f64,
    /// Execution end, virtual seconds.
    pub end: f64,
    /// Tasks in the chunk.
    pub count: u64,
    /// Assignment id (0 in the fault-oblivious path).
    pub id: u64,
    /// False when no completion was observed (the worker was killed
    /// mid-chunk, or the ring recorder evicted it); `end` is then the
    /// *scheduled* completion time.
    pub completed: bool,
}

/// Extracts the busy intervals (chunk executions) from an event stream.
///
/// At most one chunk executes per worker at a time, so pairing is by
/// worker: each [`TraceKind::ChunkStarted`] closes at the next
/// [`TraceKind::ChunkCompleted`] on the same worker. Intervals are returned
/// in `(pe, start)` order.
pub fn busy_intervals(events: &[TraceEvent]) -> Vec<PeInterval> {
    let mut open: Vec<(usize, PeInterval)> = Vec::new(); // (worker, pending)
    let mut done: Vec<PeInterval> = Vec::new();
    for ev in events {
        match ev.kind {
            TraceKind::ChunkStarted { worker, id, count, exec_secs } => {
                // A still-open interval here means its completion never
                // arrived (killed worker); flush it as incomplete.
                if let Some(pos) = open.iter().position(|(w, _)| *w == worker) {
                    done.push(open.swap_remove(pos).1);
                }
                open.push((
                    worker,
                    PeInterval {
                        pe: worker,
                        start: ev.at,
                        end: ev.at + exec_secs,
                        count,
                        id,
                        completed: false,
                    },
                ));
            }
            TraceKind::ChunkCompleted { worker, .. } => {
                if let Some(pos) = open.iter().position(|(w, _)| *w == worker) {
                    let (_, mut iv) = open.swap_remove(pos);
                    iv.end = ev.at;
                    iv.completed = true;
                    done.push(iv);
                }
            }
            _ => {}
        }
    }
    done.extend(open.into_iter().map(|(_, iv)| iv));
    done.sort_by(|a, b| (a.pe, a.start).partial_cmp(&(b.pe, b.start)).expect("times are finite"));
    done
}

/// Renders the busy intervals as a per-PE timeline CSV
/// (`pe,start_s,end_s,tasks,assignment_id,completed`).
pub fn timeline_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("pe,start_s,end_s,tasks,assignment_id,completed\n");
    for iv in busy_intervals(events) {
        out.push_str(&format!(
            "{},{:.9},{:.9},{},{},{}\n",
            iv.pe,
            iv.start,
            iv.end,
            iv.count,
            iv.id,
            if iv.completed { "yes" } else { "no" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(at: f64, worker: usize, id: u64, count: u64, exec: f64) -> TraceEvent {
        TraceEvent { at, kind: TraceKind::ChunkStarted { worker, id, count, exec_secs: exec } }
    }
    fn completed(at: f64, worker: usize, id: u64, count: u64) -> TraceEvent {
        TraceEvent { at, kind: TraceKind::ChunkCompleted { worker, id, count } }
    }

    #[test]
    fn pairs_per_worker() {
        let events = [
            started(0.0, 0, 1, 10, 5.0),
            started(0.0, 1, 2, 10, 7.0),
            completed(5.0, 0, 1, 10),
            completed(7.0, 1, 2, 10),
            started(5.0, 0, 3, 4, 2.0),
            completed(7.0, 0, 3, 4),
        ];
        let ivs = busy_intervals(&events);
        assert_eq!(ivs.len(), 3);
        assert_eq!((ivs[0].pe, ivs[0].start, ivs[0].end), (0, 0.0, 5.0));
        assert_eq!((ivs[1].pe, ivs[1].start, ivs[1].end), (0, 5.0, 7.0));
        assert_eq!((ivs[2].pe, ivs[2].start, ivs[2].end), (1, 0.0, 7.0));
        assert!(ivs.iter().all(|iv| iv.completed));
    }

    #[test]
    fn unfinished_chunk_keeps_scheduled_end() {
        let events = [started(1.0, 0, 9, 8, 4.0)];
        let ivs = busy_intervals(&events);
        assert_eq!(ivs.len(), 1);
        assert!(!ivs[0].completed);
        assert!((ivs[0].end - 5.0).abs() < 1e-12);
    }

    #[test]
    fn csv_shape() {
        let events = [started(0.0, 0, 1, 10, 5.0), completed(5.0, 0, 1, 10)];
        let csv = timeline_csv(&events);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "pe,start_s,end_s,tasks,assignment_id,completed");
        let row = lines.next().unwrap();
        assert!(row.starts_with("0,0.000000000,5.000000000,10,1,yes"), "{row}");
    }
}

//! Chrome `trace_event` JSON export.
//!
//! The output is the JSON-object flavour of the [trace event format] that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: one process, one thread ("track") per PE plus a `master` track
//! and a `network` track.
//!
//! * Chunk executions become complete (`"ph": "X"`) duration events on the
//!   executing PE's track.
//! * Scheduling operations (chunk assigned / reassigned), retries,
//!   fail-stops and finalizations become instant (`"ph": "i"`) events.
//! * Message drops and delays land on the `network` track; per-message
//!   send/deliver events are intentionally *not* exported (an SS run has
//!   millions — they would drown the visualization) but remain available
//!   to programmatic consumers of the raw event stream.
//!
//! Timestamps are microseconds of virtual time, as the format requires.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::timeline::busy_intervals;
use crate::{TraceEvent, TraceKind};
use serde::Value;

const PID: u64 = 0;
/// Master events go to tid 0; PE `w` to tid `w + 1`.
const TID_MASTER: u64 = 0;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: impl Into<String>) -> Value {
    Value::String(text.into())
}

fn us(seconds: f64) -> Value {
    Value::F64(seconds * 1e6)
}

fn meta(name: &str, tid: u64, value: &str) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("M")),
        ("pid", Value::U64(PID)),
        ("tid", Value::U64(tid)),
        ("args", obj(vec![("name", s(value))])),
    ])
}

fn instant(name: &str, at: f64, tid: u64, args: Vec<(&str, Value)>) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("i")),
        ("s", s("t")),
        ("pid", Value::U64(PID)),
        ("tid", Value::U64(tid)),
        ("ts", us(at)),
        ("args", obj(args)),
    ])
}

/// Builds the trace-event document for `p` PEs as a [`Value`] tree.
///
/// `label` names the process in the viewer (e.g. the scenario name).
pub fn chrome_trace_value(events: &[TraceEvent], p: usize, label: &str) -> Value {
    let tid_network = p as u64 + 1;
    let mut items: Vec<Value> = Vec::new();
    items.push(meta("process_name", TID_MASTER, label));
    items.push(meta("thread_name", TID_MASTER, "master"));
    for w in 0..p {
        items.push(meta("thread_name", w as u64 + 1, &format!("PE {w}")));
    }
    items.push(meta("thread_name", tid_network, "network"));

    // Duration events: one "X" slice per chunk execution.
    for iv in busy_intervals(events) {
        items.push(obj(vec![
            ("name", s(format!("chunk[{}]", iv.count))),
            ("ph", s("X")),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(iv.pe as u64 + 1)),
            ("ts", us(iv.start)),
            ("dur", us(iv.end - iv.start)),
            (
                "args",
                obj(vec![
                    ("tasks", Value::U64(iv.count)),
                    ("assignment_id", Value::U64(iv.id)),
                    ("completed", Value::Bool(iv.completed)),
                ]),
            ),
        ]));
    }

    // Instant events for the control plane.
    for ev in events {
        match ev.kind {
            TraceKind::ChunkAssigned { worker, id, start, count, .. } => {
                items.push(instant(
                    "assign",
                    ev.at,
                    TID_MASTER,
                    vec![
                        ("worker", Value::U64(worker as u64)),
                        ("assignment_id", Value::U64(id)),
                        ("start", Value::U64(start)),
                        ("tasks", Value::U64(count)),
                    ],
                ));
            }
            TraceKind::ChunkReassigned { worker, start, count } => {
                items.push(instant(
                    "reassign",
                    ev.at,
                    TID_MASTER,
                    vec![
                        ("worker", Value::U64(worker as u64)),
                        ("start", Value::U64(start)),
                        ("tasks", Value::U64(count)),
                    ],
                ));
            }
            TraceKind::MasterRetry { worker, id, attempt } => {
                items.push(instant(
                    "master_retry",
                    ev.at,
                    TID_MASTER,
                    vec![
                        ("worker", Value::U64(worker as u64)),
                        ("assignment_id", Value::U64(id)),
                        ("attempt", Value::U64(attempt as u64)),
                    ],
                ));
            }
            TraceKind::WorkerDeclaredDead { worker } => {
                items.push(instant(
                    "declared_dead",
                    ev.at,
                    TID_MASTER,
                    vec![("worker", Value::U64(worker as u64))],
                ));
            }
            TraceKind::WorkerRetry { worker } => {
                items.push(instant("request_retry", ev.at, worker as u64 + 1, vec![]));
            }
            TraceKind::WorkerFailStop { worker } => {
                items.push(instant("fail_stop", ev.at, worker as u64 + 1, vec![]));
            }
            TraceKind::WorkerFinalized { worker } => {
                items.push(instant("finalize", ev.at, worker as u64 + 1, vec![]));
            }
            TraceKind::MsgDropped { from, to } => {
                items.push(instant(
                    "drop",
                    ev.at,
                    tid_network,
                    vec![("from", Value::U64(from as u64)), ("to", Value::U64(to as u64))],
                ));
            }
            TraceKind::MsgDelayed { from, to, extra } => {
                items.push(instant(
                    "delay",
                    ev.at,
                    tid_network,
                    vec![
                        ("from", Value::U64(from as u64)),
                        ("to", Value::U64(to as u64)),
                        ("extra_s", Value::F64(extra)),
                    ],
                ));
            }
            _ => {}
        }
    }

    obj(vec![("traceEvents", Value::Array(items)), ("displayTimeUnit", s("ms"))])
}

/// Renders the trace-event document to a JSON string.
pub fn chrome_trace_json(events: &[TraceEvent], p: usize, label: &str) -> String {
    serde_json::to_string_pretty(&chrome_trace_value(events, p, label))
        .expect("value serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at: 0.0,
                kind: TraceKind::ChunkAssigned {
                    worker: 0,
                    id: 1,
                    start: 0,
                    count: 4,
                    work_secs: 4.0,
                },
            },
            TraceEvent {
                at: 0.1,
                kind: TraceKind::ChunkStarted { worker: 0, id: 1, count: 4, exec_secs: 4.0 },
            },
            TraceEvent { at: 4.1, kind: TraceKind::ChunkCompleted { worker: 0, id: 1, count: 4 } },
            TraceEvent { at: 5.0, kind: TraceKind::MsgDropped { from: 1, to: 0 } },
            TraceEvent { at: 6.0, kind: TraceKind::WorkerFinalized { worker: 0 } },
        ]
    }

    #[test]
    fn document_round_trips_as_json() {
        let json = chrome_trace_json(&sample(), 2, "test");
        let v: serde::Value = serde_json::from_str(&json).expect("exporter must emit valid JSON");
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        // 4 metadata (process + master + 2 PEs + network = 5) ... count:
        // process_name, master, PE0, PE1, network = 5 metadata entries.
        let metas = evs.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("M")).count();
        assert_eq!(metas, 5);
        let slices: Vec<_> =
            evs.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("X")).collect();
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].get("tid"), Some(&Value::U64(1)));
        let dur = slices[0].get("dur").unwrap().as_f64().unwrap();
        assert!((dur - 4e6).abs() < 1.0, "duration in microseconds, got {dur}");
    }

    #[test]
    fn instants_cover_control_plane() {
        let json = chrome_trace_json(&sample(), 1, "t");
        assert!(json.contains("\"assign\""));
        assert!(json.contains("\"drop\""));
        assert!(json.contains("\"finalize\""));
    }
}

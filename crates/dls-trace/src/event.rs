//! The trace event model.

/// One trace event: what happened, and when (virtual seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event, seconds.
    pub at: f64,
    /// What happened.
    pub kind: TraceKind,
}

/// The event vocabulary, covering the chunk lifecycle of the master–worker
/// protocol, message-level fates decided by the DES engine, and the
/// fault/recovery machinery.
///
/// `worker` fields are *worker/PE indices* (0-based, as in every outcome
/// vector); `from`/`to`/`actor` fields are raw DES actor ids (in
/// `dls-msgsim`, actor 0 is the master and worker `w` is actor `w + 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// The master performed one scheduling operation: it drew a fresh chunk
    /// from the technique and assigned it to a worker.
    ChunkAssigned {
        /// Executing worker index.
        worker: usize,
        /// Assignment id (0 in the fault-oblivious path, unique otherwise).
        id: u64,
        /// First task index of the chunk.
        start: u64,
        /// Number of tasks in the chunk.
        count: u64,
        /// Sum of the chunk's task times at unit speed, seconds.
        work_secs: f64,
    },
    /// A worker began executing a chunk.
    ChunkStarted {
        /// Worker index.
        worker: usize,
        /// Assignment id echoed from the work message.
        id: u64,
        /// Number of tasks in the chunk.
        count: u64,
        /// Execution time the chunk will take on this worker, seconds.
        exec_secs: f64,
    },
    /// A worker finished executing a chunk.
    ChunkCompleted {
        /// Worker index.
        worker: usize,
        /// Assignment id.
        id: u64,
        /// Number of tasks in the chunk.
        count: u64,
    },
    /// A chunk recovered from a declared-dead worker was re-dispatched.
    ChunkReassigned {
        /// The surviving worker receiving the chunk.
        worker: usize,
        /// First task index of the chunk.
        start: u64,
        /// Number of tasks in the chunk.
        count: u64,
    },
    /// A message was handed to the engine for delivery.
    MsgSent {
        /// Sending actor id.
        from: usize,
        /// Receiving actor id.
        to: usize,
        /// Scheduled delivery time, seconds.
        deliver_at: f64,
        /// Engine sequence number of the delivery event.
        seq: u64,
    },
    /// A message reached its target and its callback ran.
    MsgDelivered {
        /// Sending actor id.
        from: usize,
        /// Receiving actor id.
        to: usize,
    },
    /// The interceptor discarded a message (lossy link / partition).
    MsgDropped {
        /// Sending actor id.
        from: usize,
        /// Receiving actor id.
        to: usize,
    },
    /// The interceptor postponed a message (latency spike).
    MsgDelayed {
        /// Sending actor id.
        from: usize,
        /// Receiving actor id.
        to: usize,
        /// Extra delay added on top of the nominal delivery time, seconds.
        extra: f64,
    },
    /// A timer fired and its callback ran.
    TimerFired {
        /// Owning actor id.
        actor: usize,
        /// Timer key.
        key: u64,
    },
    /// An actor was fail-stopped.
    ActorKilled {
        /// The killed actor id.
        victim: usize,
    },
    /// A delivery or timer was discarded because its target was dead.
    DeadLetter {
        /// The dead target's actor id.
        to: usize,
    },
    /// The fault plan crashed a worker (worker-index view of
    /// [`TraceKind::ActorKilled`]).
    WorkerFailStop {
        /// Crashed worker index.
        worker: usize,
    },
    /// A chunk watchdog expired and the master re-requested the chunk.
    MasterRetry {
        /// Worker the chunk is outstanding on.
        worker: usize,
        /// Assignment id.
        id: u64,
        /// Expiries so far for this chunk (1 = first retry).
        attempt: u32,
    },
    /// A worker's reply watchdog expired and it retransmitted its request.
    WorkerRetry {
        /// Retransmitting worker index.
        worker: usize,
    },
    /// The master gave up on a worker and declared it dead.
    WorkerDeclaredDead {
        /// The abandoned worker index.
        worker: usize,
    },
    /// The master sent a finalization message to a worker.
    WorkerFinalized {
        /// Finalized worker index.
        worker: usize,
    },
}

impl TraceKind {
    /// The worker/PE index this event belongs to, if it is PE-scoped.
    pub fn worker(&self) -> Option<usize> {
        match *self {
            TraceKind::ChunkAssigned { worker, .. }
            | TraceKind::ChunkStarted { worker, .. }
            | TraceKind::ChunkCompleted { worker, .. }
            | TraceKind::ChunkReassigned { worker, .. }
            | TraceKind::WorkerFailStop { worker }
            | TraceKind::MasterRetry { worker, .. }
            | TraceKind::WorkerRetry { worker }
            | TraceKind::WorkerDeclaredDead { worker }
            | TraceKind::WorkerFinalized { worker } => Some(worker),
            _ => None,
        }
    }

    /// A short, stable label for exporters.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::ChunkAssigned { .. } => "chunk_assigned",
            TraceKind::ChunkStarted { .. } => "chunk_started",
            TraceKind::ChunkCompleted { .. } => "chunk_completed",
            TraceKind::ChunkReassigned { .. } => "chunk_reassigned",
            TraceKind::MsgSent { .. } => "msg_sent",
            TraceKind::MsgDelivered { .. } => "msg_delivered",
            TraceKind::MsgDropped { .. } => "msg_dropped",
            TraceKind::MsgDelayed { .. } => "msg_delayed",
            TraceKind::TimerFired { .. } => "timer_fired",
            TraceKind::ActorKilled { .. } => "actor_killed",
            TraceKind::DeadLetter { .. } => "dead_letter",
            TraceKind::WorkerFailStop { .. } => "worker_fail_stop",
            TraceKind::MasterRetry { .. } => "master_retry",
            TraceKind::WorkerRetry { .. } => "worker_retry",
            TraceKind::WorkerDeclaredDead { .. } => "worker_declared_dead",
            TraceKind::WorkerFinalized { .. } => "worker_finalized",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_scoping() {
        assert_eq!(
            TraceKind::ChunkStarted { worker: 3, id: 0, count: 1, exec_secs: 1.0 }.worker(),
            Some(3)
        );
        assert_eq!(TraceKind::MsgDropped { from: 0, to: 1 }.worker(), None);
        assert_eq!(TraceKind::WorkerRetry { worker: 7 }.worker(), Some(7));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TraceKind::ActorKilled { victim: 1 }.label(), "actor_killed");
        assert_eq!(
            TraceKind::ChunkReassigned { worker: 0, start: 0, count: 1 }.label(),
            "chunk_reassigned"
        );
    }
}

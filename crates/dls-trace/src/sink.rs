//! Event consumers and the handle that feeds them.

use crate::TraceEvent;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A consumer of trace events.
///
/// Implementations must be passive observers: recording an event may not
/// influence the simulation in any way (the bit-identical-outputs guarantee
/// is enforced by tests at the workspace root).
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, ev: TraceEvent);
}

/// A bounded in-memory recorder: keeps the most recent `capacity` events
/// and counts how many older ones were evicted.
///
/// Bounded so that tracing a 524,288-task SS run (one million-plus events)
/// cannot exhaust memory by accident; size the capacity to the scenario
/// when the full record matters.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    evicted: u64,
}

impl RingRecorder {
    /// A recorder keeping at most `capacity` events (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be at least 1");
        RingRecorder { capacity, events: VecDeque::with_capacity(capacity.min(4096)), evicted: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// The retained events as a contiguous vector, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.events.iter().copied().collect()
    }

    /// Number of events evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total events ever recorded (retained + evicted).
    pub fn total(&self) -> u64 {
        self.evicted + self.events.len() as u64
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(ev);
    }
}

/// The cheap, cloneable handle the simulators carry.
///
/// A disabled tracer holds no sink: every hook reduces to one `Option`
/// branch, no event is constructed, and nothing allocates — the zero-cost
/// path that keeps untraced runs bit-identical. Clones share the same sink,
/// so the engine and every actor of one run feed a single recorder.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

impl Tracer {
    /// The no-op tracer (also the `Default`).
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer feeding the given sink.
    pub fn new(sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Convenience: a tracer feeding a fresh [`RingRecorder`], returning
    /// both so the caller can read the record after the run.
    pub fn ring(capacity: usize) -> (Self, Rc<RefCell<RingRecorder>>) {
        let recorder = Rc::new(RefCell::new(RingRecorder::new(capacity)));
        (Tracer::new(Rc::clone(&recorder) as Rc<RefCell<dyn TraceSink>>), recorder)
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records `kind` at virtual time `at` (no-op when disabled).
    ///
    /// `#[inline]` so the disabled check — one branch on a local `Option` —
    /// folds into callers in other crates; without it every engine event
    /// pays a real call (and eager argument construction) just to discover
    /// tracing is off.
    #[inline]
    pub fn emit(&self, at: f64, kind: crate::TraceKind) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(TraceEvent { at, kind });
        }
    }

    /// Records the event produced by `f`, calling `f` only when enabled —
    /// use when building the event itself costs something.
    #[inline]
    pub fn emit_with(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(f());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceKind;

    fn ev(at: f64) -> TraceEvent {
        TraceEvent { at, kind: TraceKind::WorkerRetry { worker: 0 } }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = RingRecorder::new(3);
        for i in 0..5 {
            r.record(ev(i as f64));
        }
        assert_eq!(r.evicted(), 2);
        assert_eq!(r.total(), 5);
        let kept: Vec<f64> = r.events().iter().map(|e| e.at).collect();
        assert_eq!(kept, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        RingRecorder::new(0);
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit_with(|| panic!("must not be called"));
        t.emit(1.0, TraceKind::WorkerRetry { worker: 0 });
    }

    #[test]
    fn clones_share_the_sink() {
        let (t, rec) = Tracer::ring(16);
        let t2 = t.clone();
        t.emit(1.0, TraceKind::WorkerRetry { worker: 0 });
        t2.emit(2.0, TraceKind::WorkerRetry { worker: 1 });
        assert_eq!(rec.borrow().events().len(), 2);
    }
}

//! Simulation observability: structured trace events with virtual
//! timestamps, a zero-cost-when-disabled recording handle, and exporters.
//!
//! The paper's diagnosis work is all observability: the Figure 9 FAC
//! outlier is explained only by inspecting *per-run* behaviour, and the
//! TSS-reproduction failure is attributed to contention effects invisible
//! in end-of-run aggregates. This crate supplies the missing substrate:
//!
//! * [`TraceEvent`] — one structured event (chunk assigned / started /
//!   completed / reassigned, message send / deliver / drop / delay, worker
//!   fail-stop, watchdog retries) stamped with the virtual time at which it
//!   happened;
//! * [`TraceSink`] — the consumer interface, with [`RingRecorder`] as the
//!   bounded in-memory implementation;
//! * [`Tracer`] — the cheap, cloneable handle threaded through the
//!   simulators. A disabled tracer ([`Tracer::disabled`]) is a `None`
//!   branch per hook: no event is constructed, no allocation happens, and
//!   every simulation output stays bit-identical to an untraced run;
//! * [`chrome`] — Chrome `trace_event` JSON export (one track per PE,
//!   loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev));
//! * [`timeline`] — per-PE busy-interval extraction and timeline CSV.
//!
//! Timestamps are `f64` seconds of virtual time, matching the second-based
//! quantities of every figure; the underlying DES clock is integer
//! nanoseconds, so conversions are exact for the spans simulated here.
//!
//! # Example
//!
//! ```
//! use dls_trace::{TraceEvent, TraceKind, Tracer};
//!
//! let (tracer, recorder) = Tracer::ring(1024);
//! tracer.emit(0.5, TraceKind::ChunkAssigned {
//!     worker: 0, id: 0, start: 0, count: 64, work_secs: 64.0,
//! });
//! assert_eq!(recorder.borrow().events().len(), 1);
//!
//! // A disabled tracer never constructs the event.
//! let off = Tracer::disabled();
//! off.emit_with(|| unreachable!("disabled tracers must not build events"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod event;
mod sink;
pub mod timeline;

pub use event::{TraceEvent, TraceKind};
pub use sink::{RingRecorder, TraceSink, Tracer};

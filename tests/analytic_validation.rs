//! Closed-form validation: where the expected wasted time has an analytic
//! form, the simulators must land on it. This catches dynamics bugs that
//! two-simulator agreement alone would miss (both could share the bug).

use dls_suite::dls_core::Technique;
use dls_suite::dls_metrics::{OverheadModel, SummaryStats};
use dls_suite::dls_msgsim::{simulate, SimSpec};
use dls_suite::dls_platform::{LinkSpec, Platform};
use dls_suite::dls_workload::Workload;

fn campaign(technique: Technique, n: u64, p: usize, h: f64, runs: u64) -> SummaryStats {
    let workload = Workload::exponential(n, 1.0).unwrap();
    let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
    let spec = SimSpec::new(technique, workload, platform)
        .with_overhead(OverheadModel::PostHocTotal { h });
    let mut stats = SummaryStats::new();
    for seed in 0..runs {
        stats.push(simulate(&spec, seed).unwrap().average_wasted());
    }
    stats
}

/// STAT on 2 PEs with exponential(1) tasks: the two block sums are
/// approximately N(n/2, n/2), so their absolute difference has mean
/// √(2n/π); the average wasted time is half that plus h·2 chunks.
#[test]
fn stat_two_pes_matches_clt_prediction() {
    let n = 1024u64;
    let h = 0.5;
    let stats = campaign(Technique::Stat, n, 2, h, 400);
    let expected = (2.0 * n as f64 / std::f64::consts::PI).sqrt() / 2.0 + 2.0 * h;
    let err = (stats.mean() - expected).abs();
    // 400 runs: standard error ≈ σ/√400 ≈ 0.5 s; allow 4 SEs.
    assert!(
        err < 4.0 * stats.std_error() + 0.5,
        "measured {} vs CLT prediction {expected}",
        stats.mean()
    );
}

/// SS with n tasks makes exactly n scheduling operations: its wasted time
/// is h·n plus a sub-second idle term (max task ≈ ln n at the end).
#[test]
fn ss_wasted_time_is_overhead_dominated() {
    let n = 1024u64;
    let h = 0.5;
    let stats = campaign(Technique::SS, n, 8, h, 100);
    let overhead = h * n as f64;
    assert!(
        stats.mean() > overhead && stats.mean() < overhead + 10.0,
        "measured {} vs overhead floor {overhead}",
        stats.mean()
    );
}

/// STAT on a constant workload with p | n wastes exactly h·p (zero idle).
#[test]
fn stat_constant_wastes_only_overhead() {
    let workload = Workload::constant(1000, 0.01);
    let platform = Platform::homogeneous_star("pe", 10, 1.0, LinkSpec::negligible());
    let spec = SimSpec::new(Technique::Stat, workload, platform)
        .with_overhead(OverheadModel::PostHocTotal { h: 0.5 });
    let out = simulate(&spec, 0).unwrap();
    assert_eq!(out.chunks, 10);
    assert!((out.average_wasted() - 5.0).abs() < 1e-6);
}

/// CSS(k) issues exactly ⌈n/k⌉ chunks.
#[test]
fn css_chunk_count_formula() {
    for (n, k) in [(1000u64, 64u64), (1000, 1000), (1000, 1), (1001, 64)] {
        let workload = Workload::constant(n, 1e-3);
        let platform = Platform::homogeneous_star("pe", 4, 1.0, LinkSpec::negligible());
        let spec = SimSpec::new(Technique::Css { k }, workload, platform);
        let out = simulate(&spec, 0).unwrap();
        assert_eq!(out.chunks, n.div_ceil(k), "n={n} k={k}");
    }
}

/// GSS's scheduling-operation count follows p·ln(n/p) + O(p).
#[test]
fn gss_chunk_count_scaling() {
    for p in [4usize, 16, 64] {
        let n = 65_536u64;
        let workload = Workload::constant(n, 1e-3);
        let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
        let spec = SimSpec::new(Technique::Gss { min_chunk: 1 }, workload, platform);
        let out = simulate(&spec, 0).unwrap();
        let prediction = p as f64 * (n as f64 / p as f64).ln() + p as f64;
        let ratio = out.chunks as f64 / prediction;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "p={p}: {} chunks vs predicted {prediction:.0}",
            out.chunks
        );
    }
}

/// Makespan of SS on constant tasks with p | n is exactly (n/p)·t.
#[test]
fn ss_constant_makespan_exact() {
    let workload = Workload::constant(1200, 0.25);
    let platform = Platform::homogeneous_star("pe", 6, 1.0, LinkSpec::negligible());
    let spec = SimSpec::new(Technique::SS, workload, platform);
    let out = simulate(&spec, 0).unwrap();
    assert!((out.makespan - 50.0).abs() < 1e-5, "makespan = {}", out.makespan);
}

/// FAC2's expected chunk count is ~2p·log2(n/(2p)): geometric halving in
/// batches of p (plus the tail).
#[test]
fn fac2_chunk_count_scaling() {
    let n = 65_536u64;
    let p = 8usize;
    let workload = Workload::constant(n, 1e-3);
    let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
    let spec = SimSpec::new(Technique::Fac2, workload, platform);
    let out = simulate(&spec, 0).unwrap();
    let prediction = p as f64 * (n as f64 / (2.0 * p as f64)).log2();
    let ratio = out.chunks as f64 / prediction;
    assert!((0.8..=1.6).contains(&ratio), "{} chunks vs {prediction:.0}", out.chunks);
}

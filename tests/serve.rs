//! End-to-end pins for the campaign service (`repro serve`), over real TCP
//! clients against an in-process server on an ephemeral port:
//!
//! * N concurrent identical requests coalesce into exactly **one**
//!   computation, and every response body is byte-identical to a direct
//!   in-process run of the same campaign;
//! * a freshly bound server on the same cache directory restarts **warm**:
//!   the first request is already a byte-identical cache hit;
//! * malformed request JSON is a typed 422, not a connection drop;
//! * with one worker and a zero-depth queue, a request arriving while the
//!   slot is held is **shed** with HTTP 429.

use dls_suite::dls_repro::hagerup_exp::{run_figure_resilient, HagerupConfig};
use dls_suite::dls_repro::report::{format_csv, wasted_rows};
use dls_suite::dls_repro::runner::{CancelFlag, ExecContext};
use dls_suite::dls_repro::server::{ServeConfig, Server};
use dls_telemetry::{Snapshot, Telemetry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dls-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct TestServer {
    addr: SocketAddr,
    cancel: CancelFlag,
    handle: std::thread::JoinHandle<Result<(), dls_suite::dls_repro::error::ReproError>>,
}

fn start(cache_dir: &Path, workers: usize, queue_depth: usize, hold_ms: u64) -> TestServer {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: cache_dir.to_path_buf(),
        workers,
        queue_depth,
        max_requests: None,
        hold_ms,
    };
    let cancel = CancelFlag::new();
    let server = Server::bind(&cfg, Telemetry::enabled(), cancel.clone()).unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    TestServer { addr, cancel, handle }
}

impl TestServer {
    /// Cancels the accept loop and pins the graceful-interrupt exit class.
    fn stop(self) {
        self.cancel.cancel();
        let outcome = self.handle.join().unwrap();
        let err = outcome.expect_err("a cancelled server reports Interrupted");
        assert_eq!(err.exit_code(), 130, "graceful shutdown exit class");
    }
}

/// One raw HTTP exchange; returns (status, headers lowercased, body).
fn exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let head =
        format!("{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();

    let split = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("header/body separator");
    let head = std::str::from_utf8(&raw[..split]).unwrap();
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next().unwrap().split_whitespace().nth(1).unwrap().parse().unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// Scrapes `/metrics` and parses it back into a [`Snapshot`].
fn snapshot(addr: SocketAddr) -> Snapshot {
    let (status, _, body) = exchange(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    Snapshot::from_json(std::str::from_utf8(&body).unwrap()).unwrap()
}

fn metric(addr: SocketAddr, name: &str) -> Option<u64> {
    snapshot(addr).counter(name)
}

/// The small fig5 cell every test submits, and the identical direct
/// in-process computation of its CSV.
const SPEC: &[u8] = br#"{"fig":"fig5","runs":2,"seed":11,"pes":[2,4],"techniques":["SS","FAC"]}"#;

fn direct_csv() -> String {
    let mut cfg = HagerupConfig::paper(1024, 2);
    cfg.threads = 1;
    cfg.seed = 11;
    cfg.pes = vec![2, 4];
    cfg.techniques = vec!["SS".parse().unwrap(), "FAC".parse().unwrap()];
    let rows =
        run_figure_resilient(&cfg, &Telemetry::disabled(), &ExecContext::transient()).unwrap();
    let (headers, table) = wasted_rows(&rows);
    format_csv(&headers, &table)
}

#[test]
fn concurrent_identical_requests_compute_once_and_match_direct_run() {
    let dir = tmp_dir("coalesce");
    let server = start(&dir, 2, 8, 0);
    let addr = server.addr;

    let (status, _, body) = exchange(addr, "GET", "/healthz", b"");
    assert_eq!((status, body.as_slice()), (200, &b"ok\n"[..]));

    let clients: Vec<_> =
        (0..4).map(|_| std::thread::spawn(move || exchange(addr, "POST", "/run", SPEC))).collect();
    let responses: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let expected = direct_csv();
    assert!(!expected.is_empty());
    for (status, headers, body) in &responses {
        assert_eq!(*status, 200);
        assert!(header(headers, "x-cache").is_some(), "every /run response is cache-tagged");
        assert_eq!(
            std::str::from_utf8(body).unwrap(),
            expected,
            "server response is byte-identical to direct computation"
        );
    }
    let snap = snapshot(addr);
    assert_eq!(
        snap.counter("serve.computations"),
        Some(1),
        "identical concurrent requests coalesce into one computation"
    );
    // The scrape itself is counted before it is routed: healthz + 4 runs
    // + this /metrics request.
    assert_eq!(snap.counter("serve.requests"), Some(6));

    // A later repeat is a plain cache hit.
    let (status, headers, body) = exchange(addr, "POST", "/run", SPEC);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("hit"));
    assert_eq!(std::str::from_utf8(&body).unwrap(), expected);
    assert_eq!(metric(addr, "serve.computations"), Some(1));

    server.stop();

    // A new server over the same cache directory restarts warm: first
    // request is already a byte-identical hit, nothing recomputes.
    let warm = start(&dir, 2, 8, 0);
    let (status, headers, body) = exchange(warm.addr, "POST", "/run", SPEC);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("hit"), "warm restart from disk");
    assert_eq!(std::str::from_utf8(&body).unwrap(), expected);
    assert_eq!(metric(warm.addr, "serve.computations").unwrap_or(0), 0);
    warm.stop();
}

#[test]
fn malformed_and_invalid_requests_are_typed_4xx() {
    let dir = tmp_dir("badreq");
    let server = start(&dir, 1, 1, 0);
    let addr = server.addr;

    let (status, _, body) = exchange(addr, "POST", "/run", b"this is not json");
    assert_eq!(status, 422, "malformed JSON is an invalid-spec rejection");
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"class\":\"invalid-spec\""), "{text}");
    assert!(text.contains("\"exit_code\":4"), "{text}");

    let (status, _, _) = exchange(addr, "POST", "/run", br#"{"fig":"fig99","runs":2}"#);
    assert_eq!(status, 422, "unknown figure");

    let (status, _, _) = exchange(addr, "GET", "/nope", b"");
    assert_eq!(status, 404);

    let (status, _, _) = exchange(addr, "DELETE", "/run", b"");
    assert_eq!(status, 400, "wrong method on a real endpoint");

    server.stop();
}

#[test]
fn full_queue_sheds_with_429() {
    let dir = tmp_dir("shed");
    // One worker, no queue, and every cold computation holds its slot for
    // at least 1.5 s — long enough that the second (different-key) request
    // below deterministically finds the slot busy.
    let server = start(&dir, 1, 0, 1500);
    let addr = server.addr;

    let slow = std::thread::spawn(move || exchange(addr, "POST", "/run", SPEC));
    // Wait until the first request holds the worker slot.
    let deadline = Instant::now() + Duration::from_secs(10);
    while metric(addr, "serve.admission_granted") != Some(1) {
        assert!(Instant::now() < deadline, "first request never acquired the slot");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Different seed -> different cache key -> a second cold computation,
    // which must be shed rather than queued.
    let other = br#"{"fig":"fig5","runs":2,"seed":12,"pes":[2,4],"techniques":["SS","FAC"]}"#;
    let (status, _, body) = exchange(addr, "POST", "/run", other);
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8(body).unwrap().contains("\"class\":\"shed\""));
    assert_eq!(metric(addr, "serve.admission_shed"), Some(1));

    let (status, _, _) = slow.join().unwrap();
    assert_eq!(status, 200, "the slow request itself still completes");
    server.stop();
}

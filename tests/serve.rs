//! End-to-end pins for the campaign service (`repro serve`), over real TCP
//! clients against an in-process server on an ephemeral port:
//!
//! * N concurrent identical requests coalesce into exactly **one**
//!   computation, and every response body is byte-identical to a direct
//!   in-process run of the same campaign;
//! * a freshly bound server on the same cache directory restarts **warm**:
//!   the first request is already a byte-identical cache hit;
//! * malformed request JSON is a typed 422, not a connection drop;
//! * with one worker and a zero-depth queue, a request arriving while the
//!   slot is held is **shed** with HTTP 429;
//! * the occupancy gauges return to zero after a concurrent burst;
//! * `GET /metrics` parses as Prometheus text, `GET /requests` exposes the
//!   per-request span trees, and recording them keeps a cache hit
//!   byte-identical;
//! * a request whose `X-Deadline-Ms` budget expires is a typed 504 with a
//!   `Retry-After`, the occupancy gauges return to zero, and a server-wide
//!   `deadline_ms` default behaves the same without the header;
//! * a corrupted or torn cache entry is quarantined (moved, never deleted)
//!   on restart and the key recomputes byte-identically;
//! * `GET /readyz` is ready on a healthy server and flips to 503 once the
//!   cache persistence tier degrades;
//! * a stuck client is cut off by the read timeout without wedging the
//!   server, and raw non-HTTP garbage gets a typed 400.

use dls_chaos::HostFaultPlan;
use dls_suite::dls_repro::hagerup_exp::{run_figure_resilient, HagerupConfig};
use dls_suite::dls_repro::report::{format_csv, wasted_rows};
use dls_suite::dls_repro::runner::{CancelFlag, ExecContext};
use dls_suite::dls_repro::server::{ServeConfig, Server};
use dls_telemetry::{parse_prometheus_text, Logger, Snapshot, Telemetry};
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dls-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct TestServer {
    addr: SocketAddr,
    cancel: CancelFlag,
    handle: std::thread::JoinHandle<Result<(), dls_suite::dls_repro::error::ReproError>>,
}

fn config(cache_dir: &Path, workers: usize, queue_depth: usize, hold_ms: u64) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: cache_dir.to_path_buf(),
        workers,
        queue_depth,
        hold_ms,
        ..ServeConfig::default()
    }
}

fn start(cache_dir: &Path, workers: usize, queue_depth: usize, hold_ms: u64) -> TestServer {
    start_with(config(cache_dir, workers, queue_depth, hold_ms))
}

fn start_with(cfg: ServeConfig) -> TestServer {
    let cancel = CancelFlag::new();
    let server =
        Server::bind(&cfg, Telemetry::enabled(), Logger::enabled(), cancel.clone()).unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    TestServer { addr, cancel, handle }
}

impl TestServer {
    /// Cancels the accept loop and pins the graceful-interrupt exit class.
    fn stop(self) {
        self.cancel.cancel();
        let outcome = self.handle.join().unwrap();
        let err = outcome.expect_err("a cancelled server reports Interrupted");
        assert_eq!(err.exit_code(), 130, "graceful shutdown exit class");
    }
}

/// One raw HTTP exchange; returns (status, headers lowercased, body).
fn exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    exchange_with_headers(addr, method, path, &[], body)
}

/// [`exchange`] with extra request headers (e.g. `X-Deadline-Ms`).
fn exchange_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut head =
        format!("{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n", body.len());
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    parse_response(&raw)
}

/// Splits a raw HTTP/1.1 response into (status, headers lowercased, body).
fn parse_response(raw: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("header/body separator");
    let head = std::str::from_utf8(&raw[..split]).unwrap();
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next().unwrap().split_whitespace().nth(1).unwrap().parse().unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// Scrapes `/metrics.json` and parses it back into a [`Snapshot`].
fn snapshot(addr: SocketAddr) -> Snapshot {
    let (status, _, body) = exchange(addr, "GET", "/metrics.json", b"");
    assert_eq!(status, 200);
    Snapshot::from_json(std::str::from_utf8(&body).unwrap()).unwrap()
}

fn metric(addr: SocketAddr, name: &str) -> Option<u64> {
    snapshot(addr).counter(name)
}

/// The small fig5 cell every test submits, and the identical direct
/// in-process computation of its CSV.
const SPEC: &[u8] = br#"{"fig":"fig5","runs":2,"seed":11,"pes":[2,4],"techniques":["SS","FAC"]}"#;

fn direct_csv() -> String {
    let mut cfg = HagerupConfig::paper(1024, 2);
    cfg.threads = 1;
    cfg.seed = 11;
    cfg.pes = vec![2, 4];
    cfg.techniques = vec!["SS".parse().unwrap(), "FAC".parse().unwrap()];
    let rows =
        run_figure_resilient(&cfg, &Telemetry::disabled(), &ExecContext::transient()).unwrap();
    let (headers, table) = wasted_rows(&rows);
    format_csv(&headers, &table)
}

#[test]
fn concurrent_identical_requests_compute_once_and_match_direct_run() {
    let dir = tmp_dir("coalesce");
    let server = start(&dir, 2, 8, 0);
    let addr = server.addr;

    let (status, _, body) = exchange(addr, "GET", "/healthz", b"");
    assert_eq!((status, body.as_slice()), (200, &b"ok\n"[..]));

    let clients: Vec<_> =
        (0..4).map(|_| std::thread::spawn(move || exchange(addr, "POST", "/run", SPEC))).collect();
    let responses: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let expected = direct_csv();
    assert!(!expected.is_empty());
    for (status, headers, body) in &responses {
        assert_eq!(*status, 200);
        assert!(header(headers, "x-cache").is_some(), "every /run response is cache-tagged");
        assert_eq!(
            std::str::from_utf8(body).unwrap(),
            expected,
            "server response is byte-identical to direct computation"
        );
    }
    let snap = snapshot(addr);
    assert_eq!(
        snap.counter("serve.computations"),
        Some(1),
        "identical concurrent requests coalesce into one computation"
    );
    // The scrape itself is counted before it is routed: healthz + 4 runs
    // + this /metrics.json request.
    assert_eq!(snap.counter("serve.requests"), Some(6));

    // A later repeat is a plain cache hit.
    let (status, headers, body) = exchange(addr, "POST", "/run", SPEC);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("hit"));
    assert_eq!(std::str::from_utf8(&body).unwrap(), expected);
    assert_eq!(metric(addr, "serve.computations"), Some(1));

    server.stop();

    // A new server over the same cache directory restarts warm: first
    // request is already a byte-identical hit, nothing recomputes.
    let warm = start(&dir, 2, 8, 0);
    let (status, headers, body) = exchange(warm.addr, "POST", "/run", SPEC);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("hit"), "warm restart from disk");
    assert_eq!(std::str::from_utf8(&body).unwrap(), expected);
    assert_eq!(metric(warm.addr, "serve.computations").unwrap_or(0), 0);
    warm.stop();
}

#[test]
fn malformed_and_invalid_requests_are_typed_4xx() {
    let dir = tmp_dir("badreq");
    let server = start(&dir, 1, 1, 0);
    let addr = server.addr;

    let (status, _, body) = exchange(addr, "POST", "/run", b"this is not json");
    assert_eq!(status, 422, "malformed JSON is an invalid-spec rejection");
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"class\":\"invalid-spec\""), "{text}");
    assert!(text.contains("\"exit_code\":4"), "{text}");

    let (status, _, _) = exchange(addr, "POST", "/run", br#"{"fig":"fig99","runs":2}"#);
    assert_eq!(status, 422, "unknown figure");

    let (status, _, _) = exchange(addr, "GET", "/nope", b"");
    assert_eq!(status, 404);

    let (status, _, _) = exchange(addr, "DELETE", "/run", b"");
    assert_eq!(status, 400, "wrong method on a real endpoint");

    server.stop();
}

#[test]
fn full_queue_sheds_with_429() {
    let dir = tmp_dir("shed");
    // One worker, no queue, and every cold computation holds its slot for
    // at least 1.5 s — long enough that the second (different-key) request
    // below deterministically finds the slot busy.
    let server = start(&dir, 1, 0, 1500);
    let addr = server.addr;

    let slow = std::thread::spawn(move || exchange(addr, "POST", "/run", SPEC));
    // Wait until the first request holds the worker slot.
    let deadline = Instant::now() + Duration::from_secs(10);
    while metric(addr, "serve.admission_granted") != Some(1) {
        assert!(Instant::now() < deadline, "first request never acquired the slot");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Different seed -> different cache key -> a second cold computation,
    // which must be shed rather than queued.
    let other = br#"{"fig":"fig5","runs":2,"seed":12,"pes":[2,4],"techniques":["SS","FAC"]}"#;
    let (status, headers, body) = exchange(addr, "POST", "/run", other);
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8(body).unwrap().contains("\"class\":\"shed\""));
    let retry: u64 =
        header(&headers, "retry-after").expect("shed carries Retry-After").parse().unwrap();
    assert!(retry >= 1, "computed Retry-After is at least one second");
    assert_eq!(metric(addr, "serve.admission_shed"), Some(1));

    let (status, _, _) = slow.join().unwrap();
    assert_eq!(status, 200, "the slow request itself still completes");
    server.stop();
}

/// Regression pin for the occupancy gauges: after a concurrent burst that
/// exercises every exit path (cold computations, queued requests, a shed
/// and a malformed request), `serve.workers_busy` and `serve.queue_depth`
/// must both be back at zero — a slot leaked on any error path would show
/// up here as a stuck non-zero gauge.
#[test]
fn occupancy_gauges_return_to_zero_after_burst() {
    let dir = tmp_dir("burst");
    let server = start(&dir, 2, 8, 0);
    let addr = server.addr;

    let mut clients = Vec::new();
    for seed in 30..36u64 {
        let spec =
            format!(r#"{{"fig":"fig5","runs":2,"seed":{seed},"pes":[2],"techniques":["SS"]}}"#);
        clients.push(std::thread::spawn(move || exchange(addr, "POST", "/run", spec.as_bytes())));
    }
    clients.push(std::thread::spawn(move || exchange(addr, "POST", "/run", b"not json")));
    for c in clients {
        let (status, _, _) = c.join().unwrap();
        assert!(status == 200 || status == 422, "burst request ended with {status}");
    }

    let snap = snapshot(addr);
    assert_eq!(snap.counter("serve.computations"), Some(6), "six distinct cold keys");
    assert_eq!(snap.gauge("serve.workers_busy"), Some(0.0), "every slot released");
    assert_eq!(snap.gauge("serve.queue_depth"), Some(0.0), "queue drained");
    server.stop();
}

/// `GET /metrics` speaks the Prometheus text-exposition format (the JSON
/// snapshot moved to `/metrics.json`).
#[test]
fn metrics_endpoint_is_prometheus_text() {
    let dir = tmp_dir("prom");
    let server = start(&dir, 1, 4, 0);
    let addr = server.addr;

    let (status, _, _) = exchange(addr, "POST", "/run", SPEC);
    assert_eq!(status, 200);

    let (status, headers, body) = exchange(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("text/plain; version=0.0.4"));
    let text = std::str::from_utf8(&body).unwrap();
    let samples = parse_prometheus_text(text).expect("scrape parses as Prometheus text");
    let names: Vec<&str> = samples.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"serve_requests_total"), "counter with _total suffix: {names:?}");
    assert!(names.contains(&"serve_workers_busy"), "gauge: {names:?}");
    assert!(
        names.contains(&"serve_cold_s_bucket"),
        "histogram buckets for the cold computation: {names:?}"
    );
    let inf = samples
        .iter()
        .filter(|s| s.name == "serve_cold_s_bucket")
        .find(|s| s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf"))
        .expect("+Inf bucket present");
    assert_eq!(inf.value, 1.0, "one cold computation observed");
    server.stop();
}

/// `GET /requests` exposes the span tree of every handled request, and
/// recording spans never perturbs the response: the cache hit is
/// byte-identical to the miss that populated it.
#[test]
fn request_spans_are_exported_and_do_not_perturb_responses() {
    let dir = tmp_dir("spans");
    let server = start(&dir, 1, 4, 0);
    let addr = server.addr;

    let (status, _, miss_body) = exchange(addr, "POST", "/run", SPEC);
    assert_eq!(status, 200);
    let (status, headers, hit_body) = exchange(addr, "POST", "/run", SPEC);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("hit"));
    assert_eq!(hit_body, miss_body, "cache hit byte-identical while spans are recorded");
    let (status, _, _) = exchange(addr, "POST", "/run", b"not json");
    assert_eq!(status, 422);

    let (status, headers, body) = exchange(addr, "GET", "/requests", b"");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    let v: Value = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    let requests = v.get("requests").and_then(Value::as_array).unwrap();
    assert_eq!(requests.len(), 3);

    let outcome = |r: &Value| r.get("outcome").and_then(Value::as_str).unwrap().to_string();
    let span_names = |r: &Value| -> Vec<String> {
        r.get("spans")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|s| s.get("name").and_then(Value::as_str).unwrap().to_string())
            .collect()
    };
    assert_eq!(outcome(&requests[0]), "miss");
    assert_eq!(
        span_names(&requests[0]),
        vec!["parse", "cache_lookup", "admission_wait", "compute", "serialize"],
        "the miss walks every phase"
    );
    assert_eq!(outcome(&requests[1]), "hit");
    assert!(span_names(&requests[1]).contains(&"serialize".to_string()));
    assert_eq!(outcome(&requests[2]), "bad-request");
    // Ids are server-unique and monotonic across the trail.
    let ids: Vec<f64> =
        requests.iter().map(|r| r.get("id").and_then(Value::as_f64).unwrap()).collect();
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "{ids:?}");

    // The campaign behind the miss drove the progress tracker to
    // completion: done == total > 0, and the payload is well-formed.
    let (status, _, body) = exchange(addr, "GET", "/progress", b"");
    assert_eq!(status, 200);
    let p: Value = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    let done = p.get("done").and_then(Value::as_f64).unwrap();
    let total = p.get("total").and_then(Value::as_f64).unwrap();
    assert!(total > 0.0 && done == total, "done={done} total={total}");
    assert!(p.get("elapsed_s").and_then(Value::as_f64).is_some());
    server.stop();
}

/// A request whose deadline budget expires is a typed 504 that still frees
/// its worker slot, and the follow-up request for the same key succeeds.
#[test]
fn expired_deadline_is_a_504_that_releases_its_slot() {
    let dir = tmp_dir("deadline");
    // Every cold computation holds its slot for 400 ms, so a 50 ms budget
    // deterministically expires whether or not the compute itself is fast.
    let server = start(&dir, 1, 4, 400);
    let addr = server.addr;

    let (status, headers, body) =
        exchange_with_headers(addr, "POST", "/run", &[("X-Deadline-Ms", "50")], SPEC);
    assert_eq!(status, 504, "{}", String::from_utf8_lossy(&body));
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("\"class\":\"deadline\""), "{text}");
    let retry: u64 =
        header(&headers, "retry-after").expect("504 carries Retry-After").parse().unwrap();
    assert!(retry >= 1);

    // The span trail records the outcome before anything else runs.
    let (_, _, trail) = exchange(addr, "GET", "/requests", b"");
    let v: Value = serde_json::from_str(std::str::from_utf8(&trail).unwrap()).unwrap();
    let requests = v.get("requests").and_then(Value::as_array).unwrap();
    let last = requests.last().unwrap();
    assert_eq!(last.get("outcome").and_then(Value::as_str), Some("deadline"));

    let snap = snapshot(addr);
    assert_eq!(snap.counter("serve.deadline_expired"), Some(1));
    assert_eq!(snap.gauge("serve.workers_busy"), Some(0.0), "slot released after the 504");
    assert_eq!(snap.gauge("serve.queue_depth"), Some(0.0));

    // A malformed deadline header is a usage rejection, not a computation.
    let (status, _, body) =
        exchange_with_headers(addr, "POST", "/run", &[("X-Deadline-Ms", "0")], SPEC);
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));

    // Without a budget the same key now succeeds, byte-identical to the
    // direct computation — either as a fresh compute or as a hit on the
    // result the expired request still published.
    let (status, headers, body) = exchange(addr, "POST", "/run", SPEC);
    assert_eq!(status, 200);
    assert!(header(&headers, "x-cache").is_some());
    assert_eq!(std::str::from_utf8(&body).unwrap(), direct_csv());
    server.stop();
}

/// The server-wide `--deadline-ms` default applies to requests that carry
/// no `X-Deadline-Ms` header.
#[test]
fn server_default_deadline_applies_without_a_header() {
    let dir = tmp_dir("deadline-default");
    let mut cfg = config(&dir, 1, 4, 400);
    cfg.deadline_ms = Some(50);
    let server = start_with(cfg);
    let addr = server.addr;

    let (status, _, body) = exchange(addr, "POST", "/run", SPEC);
    assert_eq!(status, 504, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8(body).unwrap().contains("\"class\":\"deadline\""));
    assert_eq!(metric(addr, "serve.deadline_expired"), Some(1));
    server.stop();
}

/// A corrupted (torn) cache entry and a foreign file are quarantined on
/// restart — moved aside, never deleted — and the key transparently
/// recomputes byte-identically.
#[test]
fn corrupted_cache_entries_are_quarantined_and_recomputed() {
    let dir = tmp_dir("quarantine");
    let server = start(&dir, 1, 4, 0);
    let (status, _, first) = exchange(server.addr, "POST", "/run", SPEC);
    assert_eq!(status, 200);
    server.stop();

    // Tear the persisted entry in half and plant a garbage file beside it.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("the computation persisted one cache entry");
    let raw = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &raw[..raw.len() / 2]).unwrap();
    std::fs::write(dir.join("deadbeef.json"), b"{ not a cache entry").unwrap();

    let server = start(&dir, 1, 4, 0);
    let addr = server.addr;
    assert_eq!(
        metric(addr, "serve.cache_quarantined"),
        Some(2),
        "both the torn entry and the foreign file are quarantined at boot"
    );
    assert!(!entry.exists(), "the torn entry was moved out of the cache directory");
    let held = std::fs::read_dir(dir.join("quarantine")).unwrap().count();
    assert_eq!(held, 2, "quarantined files are retained for inspection, not deleted");

    // The poisoned key recomputes transparently and byte-identically.
    let (status, headers, body) = exchange(addr, "POST", "/run", SPEC);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-cache"), Some("miss"), "corrupt entry does not serve");
    assert_eq!(body, first, "recomputed answer is byte-identical to the original");
    let (status, headers, body) = exchange(addr, "POST", "/run", SPEC);
    assert_eq!((status, header(&headers, "x-cache")), (200, Some("hit")), "self-healed");
    assert_eq!(body, first);
    server.stop();
}

/// `/readyz` reports ready on a healthy server and flips to 503 once the
/// cache persistence tier degrades (every write errors via the fault plan).
#[test]
fn readyz_flips_when_the_cache_tier_degrades() {
    let healthy = start(&tmp_dir("readyz-ok"), 1, 4, 0);
    let (status, _, body) = exchange(healthy.addr, "GET", "/readyz", b"");
    assert_eq!(status, 200);
    assert!(String::from_utf8(body).unwrap().contains("\"ready\":true"));
    healthy.stop();

    let dir = tmp_dir("readyz-degraded");
    let mut cfg = config(&dir, 1, 4, 0);
    cfg.fault_plan = Some(HostFaultPlan::none().with_seed(41).with_errors(1.0));
    let server = start_with(cfg);
    let addr = server.addr;

    // The computation itself still answers (persistence is fail-soft)...
    let (status, _, body) = exchange(addr, "POST", "/run", SPEC);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(std::str::from_utf8(&body).unwrap(), direct_csv());
    // ...but the server now reports itself not-ready.
    let (status, _, body) = exchange(addr, "GET", "/readyz", b"");
    assert_eq!(status, 503);
    assert!(String::from_utf8(body).unwrap().contains("cache-degraded"));
    server.stop();
}

/// A client that connects and then stops sending is cut off by the read
/// timeout with a typed 400; the server keeps serving afterwards.
#[test]
fn stuck_client_is_timed_out_without_wedging_the_server() {
    let dir = tmp_dir("stuck");
    let mut cfg = config(&dir, 1, 4, 0);
    cfg.read_timeout_ms = 150;
    let server = start_with(cfg);
    let addr = server.addr;

    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Half a request head, then silence.
    stream.write_all(b"POST /run HTTP/1.1\r\nHost: test\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let elapsed = started.elapsed();
    assert!(elapsed < Duration::from_secs(5), "read timeout fired, not the 10 s default");
    let (status, _, _) = parse_response(&raw);
    assert_eq!(status, 400, "the stalled read is answered as malformed HTTP");

    let (status, _, body) = exchange(addr, "GET", "/healthz", b"");
    assert_eq!((status, body.as_slice()), (200, &b"ok\n"[..]), "server unaffected");
    server.stop();
}

/// Raw non-HTTP bytes on the wire get a typed 400 and a clean close.
#[test]
fn raw_garbage_bytes_are_rejected_with_a_400() {
    let dir = tmp_dir("garbage");
    let server = start(&dir, 1, 4, 0);
    let addr = server.addr;

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"\xff\xfe\x00garbage\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let (status, _, body) = parse_response(&raw);
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8(body).unwrap().contains("\"class\":\"usage\""));

    let (status, _, _) = exchange(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    server.stop();
}

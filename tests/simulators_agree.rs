//! Cross-simulator verification: the SimGrid-MSG analog and the Hagerup
//! replica must agree when fed identical task-time realizations over a
//! zeroed network — the within-workspace analogue of the paper's
//! verification-via-reproducibility argument.

use dls_suite::dls_core::{AwfVariant, Technique};
use dls_suite::dls_hagerup::DirectSimulator;
use dls_suite::dls_metrics::OverheadModel;
use dls_suite::dls_msgsim::{simulate_with_tasks, SimSpec};
use dls_suite::dls_platform::{LinkSpec, Platform};
use dls_suite::dls_workload::{TimeModel, Workload};

fn all_techniques() -> Vec<Technique> {
    vec![
        Technique::Stat,
        Technique::SS,
        Technique::Css { k: 37 },
        Technique::Fsc,
        Technique::Gss { min_chunk: 1 },
        Technique::Gss { min_chunk: 8 },
        Technique::Tss { first: None, last: None },
        Technique::Fac,
        Technique::Fac2,
        Technique::Tap { alpha: 1.3 },
        Technique::Bold,
        Technique::Wf,
        Technique::Awf { variant: AwfVariant::Batch },
        Technique::Af,
    ]
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload::constant(2_000, 1e-3),
        Workload::exponential(2_000, 1.0).unwrap(),
        Workload::new(2_000, TimeModel::Uniform { lo: 0.1, hi: 2.0 }).unwrap(),
        Workload::new(2_000, TimeModel::LinearDecreasing { first: 2.0, last: 0.1 }).unwrap(),
        Workload::new(2_000, TimeModel::Gamma { shape: 2.0, scale: 0.5 }).unwrap(),
        Workload::new(2_000, TimeModel::Bimodal { a: 0.1, b: 5.0, p_a: 0.9 }).unwrap(),
    ]
}

/// Makespans must match within DES message-latency noise (~ns per chunk).
#[test]
fn makespans_agree_across_techniques_and_workloads() {
    for p in [2usize, 7, 16] {
        let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
        let direct = DirectSimulator::new(p, OverheadModel::None);
        for workload in workloads() {
            for technique in all_techniques() {
                let tasks = workload.generate(11);
                let spec = SimSpec::new(technique, workload.clone(), platform.clone());
                let setup = spec.loop_setup();
                let msg = simulate_with_tasks(&spec, &tasks).unwrap();
                let rep = direct.run(technique, &setup, &tasks).unwrap();
                // Adaptive schedules drift where finish-time ties break
                // differently; non-adaptive ones must agree to DES noise.
                let tol = if technique.is_adaptive() {
                    0.05 * msg.makespan.max(1.0)
                } else {
                    1e-4 * msg.makespan.max(1.0)
                };
                assert!(
                    (msg.makespan - rep.makespan).abs() <= tol,
                    "{technique} p={p} {:?}: msgsim {} vs replica {}",
                    workload.model(),
                    msg.makespan,
                    rep.makespan
                );
                if technique.is_adaptive() {
                    // Adaptive chunk sizes depend on the feedback order;
                    // ties between equal finish times break differently in
                    // the two simulators, so allow small count drift.
                    let diff = msg.chunks.abs_diff(rep.chunks);
                    assert!(
                        diff <= 1 + rep.chunks / 10,
                        "{technique} p={p}: chunk counts diverged: {} vs {}",
                        msg.chunks,
                        rep.chunks
                    );
                } else {
                    assert_eq!(msg.chunks, rep.chunks, "{technique} p={p}: chunk counts differ");
                }
            }
        }
    }
}

/// Per-worker compute times agree, not just the aggregate makespan — the
/// two simulators dispatch requests in the same availability order.
#[test]
fn per_worker_compute_agrees() {
    let p = 5;
    let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
    let direct = DirectSimulator::new(p, OverheadModel::None);
    let workload = Workload::exponential(3_000, 1.0).unwrap();
    for technique in [Technique::Fac2, Technique::Gss { min_chunk: 1 }, Technique::Bold] {
        let tasks = workload.generate(5);
        let spec = SimSpec::new(technique, workload.clone(), platform.clone());
        let msg = simulate_with_tasks(&spec, &tasks).unwrap();
        let rep = direct.run(technique, &spec.loop_setup(), &tasks).unwrap();
        for w in 0..p {
            assert!(
                (msg.compute[w] - rep.compute[w]).abs() < 1e-3 * rep.compute[w].max(1.0),
                "{technique} worker {w}: {} vs {}",
                msg.compute[w],
                rep.compute[w]
            );
        }
    }
}

/// The wasted-time metric agrees under the Hagerup overhead accounting.
#[test]
fn wasted_time_agrees_with_posthoc_overhead() {
    let p = 8;
    let overhead = OverheadModel::PostHocTotal { h: 0.5 };
    let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
    let direct = DirectSimulator::new(p, overhead);
    let workload = Workload::exponential(1_024, 1.0).unwrap();
    for technique in Technique::hagerup_set() {
        let tasks = workload.generate(21);
        let spec =
            SimSpec::new(technique, workload.clone(), platform.clone()).with_overhead(overhead);
        let msg = simulate_with_tasks(&spec, &tasks).unwrap().average_wasted();
        let rep =
            direct.run(technique, &spec.loop_setup(), &tasks).unwrap().average_wasted(overhead);
        assert!(
            (msg - rep).abs() < 1e-3 * rep.max(1.0),
            "{technique}: msgsim {msg} vs replica {rep}"
        );
    }
}

/// Heterogeneous speeds: both simulators must scale execution identically.
#[test]
fn heterogeneous_speeds_agree() {
    let speeds = vec![1.0, 2.0, 0.5];
    let platform = Platform::weighted_star("pe", &speeds, 1.0, LinkSpec::negligible()).unwrap();
    let direct = DirectSimulator::with_speeds(speeds, OverheadModel::None);
    let workload = Workload::exponential(2_000, 0.5).unwrap();
    for technique in [Technique::SS, Technique::Wf, Technique::Fac2] {
        let tasks = workload.generate(9);
        let spec = SimSpec::new(technique, workload.clone(), platform.clone());
        let msg = simulate_with_tasks(&spec, &tasks).unwrap();
        let rep = direct.run(technique, &spec.loop_setup(), &tasks).unwrap();
        assert!(
            (msg.makespan - rep.makespan).abs() < 1e-3 * rep.makespan,
            "{technique}: {} vs {}",
            msg.makespan,
            rep.makespan
        );
    }
}

/// A non-zero network cost must show up as a positive msgsim-minus-replica
/// discrepancy (the replica has no network at all).
#[test]
fn network_cost_creates_positive_discrepancy() {
    let p = 4;
    let slow_link = LinkSpec::new(5e-3, 1e6).unwrap();
    let platform = Platform::homogeneous_star("pe", p, 1.0, slow_link);
    let direct = DirectSimulator::new(p, OverheadModel::None);
    let workload = Workload::constant(1_000, 1e-3);
    let tasks = workload.generate(0);
    let spec = SimSpec::new(Technique::SS, workload.clone(), platform);
    let msg = simulate_with_tasks(&spec, &tasks).unwrap();
    let rep = direct.run(Technique::SS, &spec.loop_setup(), &tasks).unwrap();
    assert!(
        msg.makespan > 2.0 * rep.makespan,
        "per-task messaging on a 5 ms link must dominate: {} vs {}",
        msg.makespan,
        rep.makespan
    );
}

//! Crash-consistency property: a checkpoint journal truncated at *every*
//! possible byte offset — the on-disk states a power cut mid-append could
//! leave behind with a non-atomic writer — must either load as a clean
//! prefix of the original records or be refused with a typed usage error.
//! Never a panic, and never a silently merged partial record.
//!
//! (The journal's own writer is atomic-rename based, so these states
//! cannot arise from `repro` itself; this pins the *loader's* tolerance to
//! hostile bytes — copied journals, other tools, failing disks.)

use dls_suite::dls_repro::journal::{run_key, Journal, JournalMeta, JOURNAL_FILE};
use dls_suite::dls_rng::SplitMix64;
use serde::Value;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dls-journal-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn meta() -> JournalMeta {
    JournalMeta::new("fig5", "n=1024 runs=6", 7)
}

/// The journal under test: six records with seed-derived f64 payloads
/// (shortest-round-trip serialization, the real campaign value type).
fn build_reference(dir: &Path) -> Vec<(String, Value)> {
    let mut rng = SplitMix64::new(0xC4A5);
    let records: Vec<(String, Value)> = (0..6u32)
        .map(|i| {
            let v =
                Value::Array(vec![Value::F64(rng.next_f64() * 100.0), Value::U64(u64::from(i))]);
            (run_key("n=1024 p=2", 0xAB, i), v)
        })
        .collect();
    let j = Journal::open(dir, &meta()).unwrap();
    for (k, v) in &records {
        j.record(k.clone(), v.clone());
    }
    j.flush().unwrap();
    records
}

#[test]
fn every_truncation_offset_loads_a_clean_prefix_or_refuses_with_a_typed_error() {
    let ref_dir = tmp_dir("ref");
    let records = build_reference(&ref_dir);
    let bytes = std::fs::read(ref_dir.join(JOURNAL_FILE)).unwrap();
    assert!(bytes.len() > 200, "reference journal is implausibly small");

    let work = tmp_dir("work");
    let mut loaded_prefixes = 0u32;
    let mut refusals = 0u32;
    for cut in 0..=bytes.len() {
        std::fs::write(work.join(JOURNAL_FILE), &bytes[..cut]).unwrap();
        match Journal::open(&work, &meta()) {
            Ok(j) => {
                // Count the loaded prefix, then verify it IS a prefix:
                // records 0..r byte-exact originals, r.. absent. Any
                // reordering, merge, or partial decode fails here.
                let r = j.resumed() as usize;
                assert!(r <= records.len(), "cut@{cut}: loaded more records than were written");
                for (i, (k, v)) in records.iter().enumerate() {
                    let got = j.lookup(k);
                    if i < r {
                        assert_eq!(got.as_ref(), Some(v), "cut@{cut}: record {i} corrupted");
                    } else {
                        assert_eq!(got, None, "cut@{cut}: phantom record {i} after truncation");
                    }
                }
                loaded_prefixes += 1;
            }
            Err(e) => {
                // The only acceptable refusal is the actionable usage
                // error ("pass a fresh --resume directory"), never an
                // uncontrolled failure.
                assert!(e.is_usage(), "cut@{cut}: expected a usage error, got: {e}");
                refusals += 1;
            }
        }
    }
    // Both outcomes must actually occur across the sweep: cuts inside the
    // header refuse, cuts on line boundaries (and inside the torn tail)
    // load a prefix.
    assert!(loaded_prefixes > 0, "no truncation offset loaded cleanly");
    assert!(refusals > 0, "no truncation offset was refused (header cuts must be)");

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn a_truncated_then_resumed_journal_reexecutes_only_the_lost_suffix() {
    // End-to-end: tear the last record off, reopen, and confirm the next
    // session records exactly the missing run and round-trips the rest.
    let dir = tmp_dir("resume");
    let records = build_reference(&dir);
    let path = dir.join(JOURNAL_FILE);
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().collect();
    std::fs::write(&path, keep[..keep.len() - 1].join("\n") + "\n").unwrap();

    let j = Journal::open(&dir, &meta()).unwrap();
    assert_eq!(j.resumed() as usize, records.len() - 1);
    let (lost_key, lost_value) = records.last().unwrap();
    assert_eq!(j.lookup(lost_key), None);
    j.record(lost_key.clone(), lost_value.clone());
    j.flush().unwrap();

    let j2 = Journal::open(&dir, &meta()).unwrap();
    assert_eq!(j2.resumed() as usize, records.len());
    for (k, v) in &records {
        assert_eq!(j2.lookup(k).as_ref(), Some(v));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

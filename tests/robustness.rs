//! Robustness under systemic variability — the territory of the paper's
//! predecessor studies (flexibility [2] and resilience [3] of DLS), made
//! runnable on this verified substrate.

use dls_suite::dls_core::{AwfVariant, Technique};
use dls_suite::dls_msgsim::{simulate, SimSpec};
use dls_suite::dls_platform::{Host, LinkSpec, Platform, Topology};
use dls_suite::dls_workload::{Availability, PerturbationModel, Workload};

fn platform_with(perturbation: PerturbationModel, p: usize) -> Platform {
    let hosts = (0..p)
        .map(|i| Host {
            name: format!("n{i}"),
            speed: 1.0,
            cores: 1,
            availability: Availability {
                weight: 1.0,
                perturbation: if i == 0 { perturbation.clone() } else { PerturbationModel::None },
            },
        })
        .collect();
    Platform::new(hosts, Topology::Star, LinkSpec::negligible()).unwrap()
}

/// A PE slowdown must stretch the makespan of a static schedule by the
/// slowdown factor, but dynamic techniques route around it.
#[test]
fn dynamic_techniques_absorb_a_degraded_pe() {
    let workload = Workload::constant(8_000, 1e-3);
    let degraded = PerturbationModel::ConstantFactor { factor: 0.25 };

    let run = |technique, perturbed: bool| {
        let platform = if perturbed {
            platform_with(degraded.clone(), 8)
        } else {
            platform_with(PerturbationModel::None, 8)
        };
        simulate(&SimSpec::new(technique, workload.clone(), platform), 1).unwrap().makespan
    };

    // STAT: the slow PE executes its fixed block 4x slower — the makespan
    // scales with the degradation.
    let stat_base = run(Technique::Stat, false);
    let stat_deg = run(Technique::Stat, true);
    assert!(
        stat_deg > 3.5 * stat_base,
        "STAT must be hit by the full degradation: {stat_base} -> {stat_deg}"
    );

    // SS: work flows to the healthy PEs; with 1 of 8 PEs at quarter speed,
    // the effective capacity is 7.25/8 — only a ~10 % slowdown.
    let ss_base = run(Technique::SS, false);
    let ss_deg = run(Technique::SS, true);
    assert!(ss_deg < 1.25 * ss_base, "SS must absorb the degradation: {ss_base} -> {ss_deg}");

    // GSS hands its large head chunk (r/p tasks) to whichever PE asks
    // first — if that's the degraded PE, the makespan is pinned by that
    // one chunk, so GSS is no better than STAT here, just never worse.
    // (This head-chunk fragility is exactly why FAC batches and why AF
    // adapts per PE.)
    let gss_deg = run(Technique::Gss { min_chunk: 1 }, true);
    assert!(gss_deg <= 1.05 * stat_deg);
    // FAC2's half-sized head chunks halve the exposure.
    let fac2_deg = run(Technique::Fac2, true);
    assert!(fac2_deg < 0.7 * stat_deg, "FAC2 {fac2_deg} vs STAT {stat_deg}");
}

/// A step perturbation mid-run: techniques with large head chunks (FAC2's
/// first batch) suffer more than chunk-adaptive AWF-C.
#[test]
fn step_perturbation_favors_adaptive_chunking() {
    let workload = Workload::constant(16_000, 1e-3);
    // PE 0 drops to 10 % speed at t = 0.5 s (mid-run: ideal makespan 2 s).
    let step = PerturbationModel::Step { at: 0.5, factor: 0.1 };
    let run = |technique| {
        simulate(&SimSpec::new(technique, workload.clone(), platform_with(step.clone(), 8)), 2)
            .unwrap()
            .makespan
    };
    let stat = run(Technique::Stat);
    let awf_c = run(Technique::Awf { variant: AwfVariant::Chunk });
    let ss = run(Technique::SS);
    // SS is the robustness gold standard; AWF-C must be far closer to SS
    // than STAT is.
    assert!(awf_c < 0.6 * stat, "AWF-C {awf_c} vs STAT {stat}");
    assert!(awf_c < 2.0 * ss, "AWF-C {awf_c} vs SS {ss}");
}

/// Sinusoidal load: makespans stay finite and bounded by the worst-case
/// trough capacity for every technique.
#[test]
fn sinusoidal_load_bounded() {
    let workload = Workload::constant(4_000, 1e-3);
    let sin = PerturbationModel::Sinusoidal { amplitude: 0.5, period: 0.3 };
    for technique in [
        Technique::Stat,
        Technique::SS,
        Technique::Fac2,
        Technique::Gss { min_chunk: 1 },
        Technique::Af,
    ] {
        let out =
            simulate(&SimSpec::new(technique, workload.clone(), platform_with(sin.clone(), 4)), 3)
                .unwrap();
        let ideal = 1.0; // 4 s of work over 4 PEs
        assert!(
            out.makespan >= ideal * 0.99 && out.makespan <= ideal * 2.5,
            "{technique}: makespan {} out of bounds",
            out.makespan
        );
    }
}

/// Fail-stop (factor 0) on one PE after its first chunk: dynamic
/// techniques still finish (the dead PE never requests again because its
/// in-flight chunk never completes — remaining work flows to the others).
#[test]
fn failed_pe_does_not_deadlock_dynamic_schedules() {
    let workload = Workload::constant(2_000, 1e-3);
    let dead_after_start = PerturbationModel::Step { at: 0.05, factor: 1e-9 };
    let out = simulate(
        &SimSpec::new(
            Technique::Gss { min_chunk: 1 },
            workload,
            platform_with(dead_after_start, 4),
        ),
        4,
    )
    .unwrap();
    // The run completes; the makespan is dominated by the crawling PE's
    // in-flight chunk... which with GSS's big first chunk is large, but
    // finite and simulated without panicking.
    assert!(out.makespan.is_finite());
    assert_eq!(out.chunks_per_worker.iter().sum::<u64>(), out.chunks);
}

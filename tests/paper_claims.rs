//! Scaled-down checks of the paper's headline claims — the full-size runs
//! live in EXPERIMENTS.md; these guard the *shape* in CI time.

use dls_suite::dls_metrics::SummaryStats;
use dls_suite::dls_platform::LinkSpec;
use dls_suite::dls_repro::hagerup_exp::{
    max_relative_discrepancy_excluding_outlier, run_figure, HagerupConfig, OracleMode,
};
use dls_suite::dls_repro::tss_exp::{run_experiment, TssExperiment};

/// §IV-A: "a very similar performance of CSS and TSS. The SS and GSS plots
/// have almost the same tendency, yet the values differ strongly."
#[test]
fn tss_reproduction_verdict() {
    let rows = run_experiment(TssExperiment::Exp1, LinkSpec::fast(), &[48, 80]).unwrap();
    let sim = |label: &str, p: u32| rows.iter().find(|r| r.label == label && r.p == p).unwrap();
    // CSS/TSS/GSS(80) within 15 % of the digitized originals.
    for label in ["CSS", "TSS", "GSS(80)"] {
        for p in [48, 80] {
            let r = sim(label, p);
            let orig = r.reference.unwrap();
            assert!(
                (r.simulated - orig).abs() / orig < 0.15,
                "{label} p={p}: {} vs original {}",
                r.simulated,
                orig
            );
        }
    }
    // SS and GSS(1) far above the contention-degraded originals.
    for label in ["SS", "GSS(1)"] {
        let r = sim(label, 80);
        assert!(
            r.simulated > 1.5 * r.reference.unwrap(),
            "{label}: simulation should beat the degraded original ({} vs {:?})",
            r.simulated,
            r.reference
        );
    }
}

/// §IV-B1 at reduced run count: every technique's relative discrepancy is
/// within the paper's 15 % band for n = 1,024 — against an *independent*
/// oracle, as in the paper.
#[test]
fn hagerup_1k_within_paper_band() {
    let mut cfg = HagerupConfig::paper(1024, 300);
    cfg.pes = vec![2, 8, 64];
    cfg.threads = 1;
    cfg.oracle = OracleMode::IndependentSeeds;
    let rows = run_figure(&cfg).unwrap();
    let max_rel = max_relative_discrepancy_excluding_outlier(&rows);
    assert!(max_rel < 15.0, "max relative discrepancy {max_rel}% exceeds the paper's 15% band");
}

/// §IV-B: the wasted-time ordering the BOLD publication reports — SS is
/// the most wasteful at small p (h·n dominates), BOLD the least or close
/// to it.
#[test]
fn hagerup_ordering_at_small_p() {
    let mut cfg = HagerupConfig::paper(1024, 100);
    cfg.pes = vec![2];
    cfg.threads = 1;
    cfg.oracle = OracleMode::SharedRealizations;
    let rows = run_figure(&cfg).unwrap();
    let value = |t: &str| rows.iter().find(|r| r.technique == t).unwrap().msgsim;
    let ss = value("SS");
    let bold = value("BOLD");
    for t in ["STAT", "FSC", "GSS", "TSS", "FAC", "FAC2", "BOLD"] {
        assert!(value(t) < ss, "{t} must waste less than SS ({} vs {ss})", value(t));
    }
    for t in ["SS", "FSC", "GSS", "TSS", "FAC2"] {
        assert!(
            bold <= value(t) * 1.05,
            "BOLD should be at or near the minimum: {bold} vs {t} {}",
            value(t)
        );
    }
}

/// §IV-B4 / Figure 9: FAC at p=2 has a heavy per-run tail; trimming the
/// few outliers collapses the mean (paper: 1.5 % of runs, mean → 25.82 s).
#[test]
fn fac_two_pe_tail_collapses_under_trimming() {
    use dls_suite::dls_repro::outlier::{run_outlier, OutlierConfig};
    // n = 65,536 scales the paper's threshold 400 s by n: 400/8 = 50 s.
    let a = run_outlier(&OutlierConfig::scaled(65_536, 200), 50.0).unwrap();
    let tail_fraction = a.outliers as f64 / a.per_run.len() as f64;
    assert!(tail_fraction < 0.15, "outliers must be rare: {:.1} %", 100.0 * tail_fraction);
    // When outliers exist, trimming reduces the mean noticeably.
    if a.outliers > 0 {
        let tm = a.trimmed_mean.unwrap();
        assert!(tm < a.mean, "trimmed {tm} vs mean {}", a.mean);
    }
    // The trimmed mean is an order of magnitude below the max run.
    if let Some(tm) = a.trimmed_mean {
        assert!(a.stats.max() > 2.0 * tm);
    }
}

/// §IV-B: with growing n the relative discrepancy shrinks (15 % → 0.9 %
/// in the paper). Verified here at two sizes with proportional run counts.
#[test]
fn discrepancy_shrinks_with_n() {
    let run = |n: u64, runs: u32| {
        let mut cfg = HagerupConfig::paper(n, runs);
        cfg.pes = vec![8];
        cfg.oracle = OracleMode::IndependentSeeds;
        let rows = run_figure(&cfg).unwrap();
        // Use the mean |relative| over techniques: single cells are noisy.
        let mut s = SummaryStats::new();
        for r in &rows {
            s.push(r.relative_pct.abs());
        }
        s.mean()
    };
    // The paper's shrinkage comes from 1,000-run campaigns at every n; at
    // unit-test scale the mean discrepancy is dominated by sampling noise
    // (~(sigma/mu)/sqrt(runs)), so the larger size gets proportionally more
    // runs, exactly as the campaigns behind EXPERIMENTS.md do. Seeds are
    // fixed, so the comparison is deterministic.
    let small = run(1_024, 150);
    let large = run(32_768, 900);
    assert!(large < small, "mean |relative discrepancy| must shrink with n: {small}% -> {large}%");
}

//! End-to-end reproducibility pipeline: spec files → campaigns → reports.

use dls_suite::dls_core::Technique;
use dls_suite::dls_platform::{LinkSpec, Platform};
use dls_suite::dls_repro::hagerup_exp::{run_figure, HagerupConfig, OracleMode};
use dls_suite::dls_repro::outlier::{run_outlier, OutlierConfig};
use dls_suite::dls_repro::report;
use dls_suite::dls_repro::spec::{ExperimentSpec, MeasuredValue, OverheadSpec};
use dls_suite::dls_repro::tss_exp::{run_experiment, TssExperiment};
use dls_suite::dls_workload::Workload;

/// A figure-2 spec survives serialization and drives a real campaign.
#[test]
fn spec_round_trip_drives_campaign() {
    let spec = ExperimentSpec {
        id: "fig5-mini".into(),
        artifact: "Figure 5".into(),
        workload: Workload::exponential(512, 1.0).unwrap(),
        techniques: Technique::hagerup_set().to_vec(),
        platform: Platform::homogeneous_star("pe", 4, 1.0, LinkSpec::negligible()),
        runs: 5,
        measured: MeasuredValue::AverageWastedTime,
        overhead: OverheadSpec::PostHocTotal { h: 0.5 },
        seed: 1,
    };
    let revived = ExperimentSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(spec, revived);

    let cfg = HagerupConfig {
        n: revived.workload.n(),
        pes: vec![revived.platform.num_hosts()],
        runs: revived.runs,
        h: 0.5,
        mean: revived.workload.mean(),
        seed: revived.seed,
        threads: 1,
        oracle: OracleMode::SharedRealizations,
        techniques: Technique::hagerup_set().to_vec(),
        batch_width: 8,
    };
    let rows = run_figure(&cfg).unwrap();
    assert_eq!(rows.len(), 8);
    let (headers, body) = report::wasted_rows(&rows);
    let table = report::format_table(&headers, &body);
    for t in ["STAT", "SS", "FSC", "GSS", "TSS", "FAC", "FAC2", "BOLD"] {
        assert!(table.contains(t), "table missing {t}:\n{table}");
    }
}

/// Campaigns are bit-deterministic across invocations and thread counts.
#[test]
fn campaigns_are_deterministic() {
    let cfg = |threads| HagerupConfig {
        n: 256,
        pes: vec![4],
        runs: 10,
        h: 0.5,
        mean: 1.0,
        seed: 42,
        threads,
        oracle: OracleMode::IndependentSeeds,
        techniques: Technique::hagerup_set().to_vec(),
        batch_width: 8,
    };
    let a = run_figure(&cfg(1)).unwrap();
    let b = run_figure(&cfg(4)).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.msgsim, y.msgsim, "{} differs across thread counts", x.technique);
        assert_eq!(x.replica, y.replica);
    }
}

/// The TSS experiments emit a full cross-product of techniques × PEs and
/// join every row with a digitized original.
#[test]
fn tss_experiment_shape() {
    let rows = run_experiment(TssExperiment::Exp2, LinkSpec::fast(), &[8, 16, 24]).unwrap();
    assert_eq!(rows.len(), 5 * 3);
    assert!(rows.iter().all(|r| r.reference.is_some()));
    // The CSS chunk adapts to p: it is n/p in every row.
    let css8 = rows.iter().find(|r| r.label == "CSS" && r.p == 8).unwrap();
    assert!(css8.simulated > 7.0);
}

/// Figure 9's campaign returns exactly one value per run and a coherent
/// trimming analysis.
#[test]
fn outlier_analysis_is_coherent() {
    let a = run_outlier(&OutlierConfig::scaled(8_192, 30), 10.0).unwrap();
    assert_eq!(a.per_run.len(), 30);
    assert_eq!(a.outliers, a.per_run.iter().filter(|&&w| w > 10.0).count());
    assert!(a.stats.max() >= a.mean);
    if let Some(tm) = a.trimmed_mean {
        assert!(tm <= a.mean + 1e-9);
        assert!(tm <= 10.0);
    }
    // The Figure 9 series is what the CSV export writes: finite positives.
    assert!(a.per_run.iter().all(|w| w.is_finite() && *w >= 0.0));
}

/// The registry indexes every reproducible artifact and the CLI ids are
/// unique.
#[test]
fn registry_ids_unique_and_complete() {
    use dls_suite::dls_repro::registry;
    let entries = registry::experiments();
    let mut ids: Vec<&str> = entries.iter().map(|e| e.id).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), entries.len(), "duplicate registry ids");
    for fig in ["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"] {
        assert!(registry::find(fig).is_some(), "missing {fig}");
    }
}

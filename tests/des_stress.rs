//! Stress and scale tests for the discrete-event engine — the substrate
//! behind every 1,000-run campaign.

use dls_suite::dls_des::{Actor, ActorId, Ctx, Engine, SimTime};

/// A hub bouncing messages to n spokes (master-worker shaped load).
struct Hub {
    spokes: usize,
    rounds: u32,
}
struct Spoke {
    received: u64,
}

impl Actor<u32> for Hub {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        for s in 0..self.spokes {
            ctx.send(s + 1, SimTime::from_nanos(5), self.rounds);
        }
    }
    fn on_message(&mut self, from: ActorId, msg: u32, ctx: &mut Ctx<'_, u32>) {
        if msg > 0 {
            ctx.send(from, SimTime::from_nanos(5), msg - 1);
        }
    }
}
impl Actor<u32> for Spoke {
    fn on_message(&mut self, from: ActorId, msg: u32, ctx: &mut Ctx<'_, u32>) {
        self.received += 1;
        ctx.send(from, SimTime::from_nanos(3), msg);
    }
}

/// A wide fan (1,024 spokes — the paper's largest PE count) with deep
/// message exchanges completes with the exact expected event count.
#[test]
fn wide_fan_event_count_is_exact() {
    let spokes = 1024;
    let rounds = 50u32;
    let mut eng = Engine::new();
    eng.add_actor(Box::new(Hub { spokes, rounds }));
    for _ in 0..spokes {
        eng.add_actor(Box::new(Spoke { received: 0 }));
    }
    let (_, stats) = eng.run();
    // Per spoke, hub→spoke deliveries carry rounds, rounds−1, …, 0 — that
    // is rounds+1 deliveries — and the spoke echoes each one back:
    // 2·(rounds+1) events per spoke in total.
    let expected = (spokes as u64) * (2 * (rounds as u64 + 1));
    assert_eq!(stats.events, expected);
    assert!(stats.max_queue >= spokes);
}

/// Virtual time in the fan advances deterministically: last event at
/// (5+3)·rounds + 5 ns... pinned against drift.
#[test]
fn wide_fan_end_time_is_exact() {
    let spokes = 64;
    let rounds = 10u32;
    let mut eng = Engine::new();
    eng.add_actor(Box::new(Hub { spokes, rounds }));
    for _ in 0..spokes {
        eng.add_actor(Box::new(Spoke { received: 0 }));
    }
    let (_, stats) = eng.run();
    // Round trip = 5 (out) + 3 (back); the chain is: out, (back,out)×rounds
    // — the final "0" message goes out and is answered once more.
    let expect = 5 + (3 + 5) * rounds as u64 + 3;
    assert_eq!(stats.end_time, SimTime::from_nanos(expect));
}

/// Half a million events run in well under a second of wall time — the
/// throughput the campaigns depend on (regression canary, generous bound).
#[test]
fn event_throughput_canary() {
    let start = std::time::Instant::now();
    let mut eng = Engine::new();
    eng.add_actor(Box::new(Hub { spokes: 256, rounds: 1000 }));
    for _ in 0..256 {
        eng.add_actor(Box::new(Spoke { received: 0 }));
    }
    let (_, stats) = eng.run();
    assert!(stats.events > 500_000);
    let elapsed = start.elapsed();
    assert!(elapsed.as_secs_f64() < 10.0, "{} events took {elapsed:?}", stats.events);
}

//! Statistical equivalence of the two simulators — the formal version of
//! the paper's discrepancy analysis, using dls-metrics' two-sample tests.

use dls_suite::dls_core::Technique;
use dls_suite::dls_hagerup::DirectSimulator;
use dls_suite::dls_metrics::{ks_test, welch_t_test, OverheadModel};
use dls_suite::dls_msgsim::{simulate_with_tasks, SimSpec};
use dls_suite::dls_platform::{LinkSpec, Platform};
use dls_suite::dls_workload::Workload;

/// Per-run average wasted times for a (simulator, technique) campaign with
/// its own seed stream.
fn campaign(
    technique: Technique,
    n: u64,
    p: usize,
    runs: u64,
    seed_salt: u64,
    use_replica: bool,
) -> Vec<f64> {
    let overhead = OverheadModel::PostHocTotal { h: 0.5 };
    let workload = Workload::exponential(n, 1.0).unwrap();
    let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
    let spec = SimSpec::new(technique, workload.clone(), platform).with_overhead(overhead);
    let setup = spec.loop_setup();
    let direct = DirectSimulator::new(p, overhead);
    (0..runs)
        .map(|i| {
            let tasks = workload.generate(seed_salt.wrapping_add(i * 0x9E37_79B9));
            if use_replica {
                direct.run(technique, &setup, &tasks).unwrap().average_wasted(overhead)
            } else {
                simulate_with_tasks(&spec, &tasks).unwrap().average_wasted()
            }
        })
        .collect()
}

/// With independent seeds, msgsim and the replica draw from the *same*
/// distribution: Welch's t-test must not reject at α = 0.001 for any
/// technique. (This is the hypothesis the paper's 1,000-run comparison
/// implicitly tests.)
#[test]
fn simulators_are_statistically_indistinguishable() {
    for technique in [
        Technique::Stat,
        Technique::Gss { min_chunk: 1 },
        Technique::Tss { first: None, last: None },
        Technique::Fac2,
        Technique::Bold,
    ] {
        let a = campaign(technique, 1024, 8, 120, 1, false);
        let b = campaign(technique, 1024, 8, 120, 2, true);
        let t = welch_t_test(&a, &b);
        assert!(
            t.p_value > 0.001,
            "{technique}: Welch rejected (t = {:.2}, p = {:.5})",
            t.statistic,
            t.p_value
        );
    }
}

/// The same test distinguishes what it should: STAT and SS have wildly
/// different wasted-time distributions.
#[test]
fn tests_reject_genuinely_different_techniques() {
    let stat = campaign(Technique::Stat, 1024, 8, 60, 3, false);
    let ss = campaign(Technique::SS, 1024, 8, 60, 4, false);
    assert!(welch_t_test(&stat, &ss).p_value < 1e-9);
    assert!(ks_test(&stat, &ss).p_value < 1e-9);
}

/// FAC's p = 2 heavy tail (paper Figure 9) against FAC2: means are close
/// enough that small samples may not separate them, but the KS test sees
/// the distributional difference at moderate sample sizes.
#[test]
fn ks_detects_fac_heavy_tail() {
    let fac = campaign(Technique::Fac, 16_384, 2, 150, 5, false);
    let fac2 = campaign(Technique::Fac2, 16_384, 2, 150, 6, false);
    let ks = ks_test(&fac, &fac2);
    assert!(
        ks.p_value < 0.01,
        "KS should separate FAC's tail from FAC2 (D = {:.3}, p = {:.4})",
        ks.statistic,
        ks.p_value
    );
}

//! Resilient-execution guarantees, end to end: a campaign interrupted at
//! ~50 % and resumed from its checkpoint journal must produce results
//! bit-identical to an uninterrupted campaign, and a panicking run must be
//! quarantined without aborting or contaminating its neighbours.

use dls_suite::dls_core::Technique;
use dls_suite::dls_repro::error::ReproError;
use dls_suite::dls_repro::hagerup_exp::{run_figure_resilient, HagerupConfig};
use dls_suite::dls_repro::journal::{Journal, JournalMeta};
use dls_suite::dls_repro::runner::{run_campaign_resilient, ExecContext};
use dls_suite::dls_repro::sweep::{run_sweep_resilient, SweepConfig};
use dls_suite::dls_repro::{faults, sweep};
use dls_telemetry::Telemetry;
use std::path::{Path, PathBuf};

/// Fresh scratch directory per test (std-only; no tempfile dependency).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dls-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn meta(command: &str) -> JournalMeta {
    JournalMeta::new(command, "test", 0)
}

/// Runs `body` once transiently and once interrupted-then-resumed through a
/// journal in `dir`, returning (clean, resumed) Debug renderings — which
/// are bit-exact for `f64` fields (shortest-round-trip formatting).
fn clean_vs_resumed<T: std::fmt::Debug>(
    dir: &Path,
    command: &str,
    cancel_after: u64,
    body: impl Fn(&ExecContext) -> Result<T, ReproError>,
) -> (String, String) {
    let clean = body(&ExecContext::transient()).expect("uninterrupted campaign");

    let interrupted_ctx = ExecContext::with_journal(Journal::open(dir, &meta(command)).unwrap())
        .with_cancel_after(cancel_after);
    let err = body(&interrupted_ctx).expect_err("cancel_after must interrupt the campaign");
    assert!(
        matches!(err, ReproError::Interrupted { resume_dir: Some(_) }),
        "expected Interrupted with a resume hint, got {err:?}"
    );

    let resume_ctx = ExecContext::with_journal(Journal::open(dir, &meta(command)).unwrap());
    assert!(
        resume_ctx.journal().unwrap().resumed() > 0,
        "the interrupted campaign must have journaled completed runs"
    );
    let resumed = body(&resume_ctx).expect("resumed campaign");
    (format!("{clean:?}"), format!("{resumed:?}"))
}

#[test]
fn interrupted_figure_campaign_resumes_bit_identical() {
    let mut cfg = HagerupConfig::paper(1_024, 6);
    cfg.pes = vec![2, 8];
    cfg.techniques = vec![Technique::SS, Technique::Fac2];
    cfg.threads = 2;
    let dir = scratch("fig");
    // 12 runs total (6 per PE cell); interrupt after ~half.
    let (clean, resumed) = clean_vs_resumed(&dir, "fig5", 5, |ctx| {
        run_figure_resilient(&cfg, &Telemetry::disabled(), ctx)
    });
    assert_eq!(clean, resumed, "resumed figure rows must be bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_sweep_resumes_bit_identical_and_counts_skips() {
    let cfg = SweepConfig {
        ns: vec![512],
        pes: vec![4],
        techniques: vec![Technique::SS, Technique::Fac2],
        runs: 4,
        threads: 2,
        ..SweepConfig::default()
    };
    let families = cfg.families.len() as u64;
    let dir = scratch("sweep");
    let telemetry = Telemetry::enabled();
    let (clean, resumed) =
        clean_vs_resumed(&dir, "sweep", 3, |ctx| run_sweep_resilient(&cfg, &telemetry, ctx));
    assert_eq!(clean, resumed, "resumed sweep rows must be bit-identical");
    // The journal counters surface on the shared registry: the resumed
    // invocation replayed at least the 3 pre-cancellation runs, and the
    // full grid is 2 techniques x families x 4 runs per campaign.
    let snap = telemetry.snapshot();
    let journal_counters = snap.counters_with_prefix("journal.");
    let skipped = snap.counter("journal.runs_skipped").unwrap_or(0);
    let recorded = snap.counter("journal.runs_recorded").unwrap_or(0);
    assert!(!journal_counters.is_empty(), "journal.* counters must be recorded");
    assert!(skipped >= 3, "resume must skip the journaled runs (skipped={skipped})");
    assert_eq!(recorded, 2 * families * 4, "every run is journaled exactly once");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_fault_sweep_resumes_bit_identical() {
    let cfg = faults::FaultSweepConfig {
        techniques: vec![Technique::Fac2],
        runs: 3,
        threads: 2,
        ..faults::FaultSweepConfig::default()
    };
    let dir = scratch("faults");
    let (clean, resumed) = clean_vs_resumed(&dir, "faults", 4, |ctx| {
        faults::run_fault_sweep_resilient(&cfg, &Telemetry::disabled(), ctx)
    });
    assert_eq!(clean, resumed, "resumed fault rows must be bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_run_is_quarantined_without_contaminating_neighbours() {
    let telemetry = Telemetry::enabled();
    let ctx = ExecContext::transient();
    let results = run_campaign_resilient(8, 0xC0FFEE, 2, &telemetry, &ctx, "cell", |run, seed| {
        if run == 3 {
            panic!("injected failure at run 3");
        }
        seed as f64
    })
    .expect("a panicking run must not abort the campaign");

    assert_eq!(results.len(), 8);
    assert!(results[3].is_none(), "the panicking run is excluded");
    assert_eq!(results.iter().filter(|r| r.is_some()).count(), 7);

    let quarantined = ctx.quarantined();
    assert_eq!(quarantined.len(), 1, "exactly the panicking run is quarantined");
    assert_eq!(quarantined[0].cell, "cell");
    assert_eq!(quarantined[0].run, 3);
    assert!(quarantined[0].panic_message.contains("injected failure"));
    assert_eq!(telemetry.snapshot().counter("campaign.runs_quarantined"), Some(1));
}

#[test]
fn quarantine_is_scoped_to_one_sweep_cell() {
    // Drive two journaled sweep campaigns through the same context; only
    // the second cell's run panics, and only it lands in quarantine.
    let ctx = ExecContext::transient();
    let telemetry = Telemetry::disabled();
    let healthy =
        run_campaign_resilient(4, 1, 1, &telemetry, &ctx, "healthy", |_, seed| seed).unwrap();
    let faulty = run_campaign_resilient(4, 1, 1, &telemetry, &ctx, "faulty", |run, seed| {
        assert!(run != 2, "boom");
        seed
    })
    .unwrap();
    assert!(healthy.iter().all(|r| r.is_some()));
    assert_eq!(faulty.iter().filter(|r| r.is_none()).count(), 1);
    let quarantined = ctx.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].cell, "faulty");
    assert_eq!(quarantined[0].run, 2);
}

#[test]
fn sweep_statistics_survive_a_quarantined_run() {
    // The public aggregation path must divide by completed runs, not
    // requested runs: compare a 4-run cell with one quarantined run against
    // the same campaign where the "panicking" run simply never ran.
    let obs = |seed: u64| sweep::SweepRunObs { wasted: seed as f64, speedup: 1.0, chunks: 10 };
    let ctx = ExecContext::transient();
    let with_panic =
        run_campaign_resilient(4, 7, 1, &Telemetry::disabled(), &ctx, "cell", |run, seed| {
            assert!(run != 1, "boom");
            obs(seed)
        })
        .unwrap();
    let completed: Vec<_> = with_panic.iter().flatten().collect();
    assert_eq!(completed.len(), 3);
    // Mean over the 3 completed observations only.
    let mean = completed.iter().map(|o| o.wasted).sum::<f64>() / completed.len() as f64;
    assert!(mean.is_finite());
}

//! Property-based tests over the core scheduling invariants.
//!
//! For *any* loop size, PE count, technique and request order:
//! * chunks are positive and sum to exactly `n` (task conservation);
//! * the scheduler reports 0 remaining afterwards and stays exhausted;
//! * simulated makespans are bounded below by the critical path and above
//!   by the serial time (plus communication);
//! * speedup never exceeds `p`; wasted time is never negative.

use dls_suite::dls_core::{drain_round_robin, LoopSetup, Technique};
use dls_suite::dls_hagerup::DirectSimulator;
use dls_suite::dls_metrics::OverheadModel;
use dls_suite::dls_msgsim::{simulate, SimSpec};
use dls_suite::dls_platform::{LinkSpec, Platform};
use dls_suite::dls_rng::{SplitMix64, UniformSource};
use dls_suite::dls_workload::{TimeModel, Workload};
use proptest::prelude::*;

fn technique_strategy() -> impl Strategy<Value = Technique> {
    prop_oneof![
        Just(Technique::Stat),
        Just(Technique::SS),
        (1u64..500).prop_map(|k| Technique::Css { k }),
        Just(Technique::Fsc),
        (1u64..100).prop_map(|min_chunk| Technique::Gss { min_chunk }),
        Just(Technique::Tss { first: None, last: None }),
        Just(Technique::Fac),
        Just(Technique::Fac2),
        (1u32..30).prop_map(|a| Technique::Tap { alpha: a as f64 / 10.0 }),
        Just(Technique::Bold),
        Just(Technique::Wf),
        Just(Technique::Af),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-robin draining conserves tasks for every technique.
    #[test]
    fn chunks_sum_to_n(
        n in 1u64..50_000,
        p in 1usize..64,
        technique in technique_strategy(),
        sigma in 0.0f64..4.0,
        h in 0.0f64..2.0,
    ) {
        let setup = LoopSetup::new(n, p).with_moments(1.0, sigma).with_overhead(h);
        let mut sched = technique.build(&setup).unwrap();
        let chunks = drain_round_robin(sched.as_mut(), p);
        prop_assert_eq!(chunks.iter().sum::<u64>(), n);
        prop_assert!(chunks.iter().all(|&c| c > 0));
        prop_assert_eq!(sched.remaining(), 0);
        prop_assert_eq!(sched.next_chunk(0), 0);
    }

    /// Conservation holds for adversarial (random) request orders too.
    #[test]
    fn chunks_sum_to_n_random_order(
        n in 1u64..20_000,
        p in 2usize..32,
        technique in technique_strategy(),
        seed in any::<u64>(),
    ) {
        let setup = LoopSetup::new(n, p).with_moments(1.0, 1.0).with_overhead(0.5);
        let mut sched = technique.build(&setup).unwrap();
        let mut rng = SplitMix64::new(seed);
        let mut total = 0u64;
        // Random requesting PE each time; at most n+p iterations needed.
        for _ in 0..(n + p as u64 + 8) {
            let pe = (rng.next_u01() * p as f64) as usize % p;
            let c = sched.next_chunk(pe);
            total += c;
            if sched.remaining() == 0 && c == 0 {
                break;
            }
        }
        // STAT may return 0 to an already-served PE while work remains for
        // others; finish the drain deterministically.
        for pe in 0..p {
            loop {
                let c = sched.next_chunk(pe);
                if c == 0 { break; }
                total += c;
            }
        }
        prop_assert_eq!(total, n);
    }

    /// Makespan bounds: serial/p <= makespan <= serial (for a free network,
    /// unit speeds, and work-conserving scheduling).
    #[test]
    fn makespan_bounds(
        n in 1u64..5_000,
        p in 1usize..24,
        technique in technique_strategy(),
        seed in any::<u64>(),
    ) {
        let workload = Workload::exponential(n, 1.0).unwrap();
        let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
        let spec = SimSpec::new(technique, workload, platform);
        let out = simulate(&spec, seed).unwrap();
        let lower = out.serial_time / p as f64;
        // Generous epsilon for nanosecond message latencies.
        prop_assert!(out.makespan + 1e-6 >= lower,
            "makespan {} below critical path {}", out.makespan, lower);
        prop_assert!(out.makespan <= out.serial_time + 1.0,
            "makespan {} above serial {}", out.makespan, out.serial_time);
        prop_assert!(out.speedup() <= p as f64 + 1e-6);
        prop_assert!(out.average_wasted() >= 0.0);
    }

    /// The two simulators agree for arbitrary techniques/sizes/seeds.
    #[test]
    fn simulators_agree_property(
        n in 1u64..4_000,
        p in 1usize..24,
        technique in technique_strategy(),
        seed in any::<u64>(),
    ) {
        let workload = Workload::exponential(n, 1.0).unwrap();
        let tasks = workload.generate(seed);
        let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
        let spec = SimSpec::new(technique, workload, platform);
        let msg = dls_suite::dls_msgsim::simulate_with_tasks(&spec, &tasks).unwrap();
        let rep = DirectSimulator::new(p, OverheadModel::None)
            .run(technique, &spec.loop_setup(), &tasks)
            .unwrap();
        prop_assert!((msg.makespan - rep.makespan).abs() <= 1e-4 * rep.makespan.max(1.0),
            "{technique}: {} vs {}", msg.makespan, rep.makespan);
        prop_assert_eq!(msg.chunks, rep.chunks);
    }

    /// Workload realizations respect the declared moments (LLN bound) and
    /// are reproducible from the seed.
    #[test]
    fn workload_moments_and_determinism(
        mean in 0.1f64..10.0,
        seed in any::<u64>(),
    ) {
        let w = Workload::exponential(50_000, mean).unwrap();
        let a = w.generate(seed);
        let b = w.generate(seed);
        prop_assert_eq!(a.total(), b.total());
        let sample_mean = a.total() / a.len() as f64;
        // 50k exponential samples: SE = mean/√50k ≈ 0.45% of mean.
        prop_assert!((sample_mean - mean).abs() < 0.05 * mean,
            "sample mean {} vs {}", sample_mean, mean);
    }

    /// Decreasing-chunk techniques produce non-increasing chunk sequences
    /// under round-robin requests.
    #[test]
    fn guided_family_is_non_increasing(
        n in 100u64..50_000,
        p in 2usize..64,
    ) {
        for technique in [
            Technique::Gss { min_chunk: 1 },
            Technique::Tss { first: None, last: None },
            Technique::Fac2,
            Technique::Bold,
            Technique::Tap { alpha: 1.3 },
        ] {
            let setup = LoopSetup::new(n, p).with_moments(1.0, 1.0).with_overhead(0.5);
            let mut sched = technique.build(&setup).unwrap();
            let chunks = drain_round_robin(sched.as_mut(), p);
            prop_assert!(
                chunks.windows(2).all(|w| w[0] >= w[1]),
                "{technique} produced an increasing chunk pair: {:?}",
                chunks.windows(2).find(|w| w[0] < w[1])
            );
        }
    }

    /// Constant workloads have zero imbalance under STAT when p divides n:
    /// all wasted time is overhead.
    #[test]
    fn stat_perfect_balance(blocks in 1u64..200, p in 1usize..32) {
        let n = blocks * p as u64;
        let workload = Workload::constant(n, 1e-3);
        let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
        let spec = SimSpec::new(Technique::Stat, workload, platform);
        let out = simulate(&spec, 0).unwrap();
        prop_assert!(out.average_wasted() < 1e-6, "wasted = {}", out.average_wasted());
    }

    /// TimeModel ramps hit their endpoints for any n >= 2.
    #[test]
    fn ramps_hit_endpoints(n in 2u64..10_000, a in 0.0f64..10.0, b in 0.0f64..10.0) {
        let w = Workload::new(n, TimeModel::LinearDecreasing { first: a, last: b });
        prop_assume!(w.is_ok());
        let t = w.unwrap().generate(0);
        prop_assert!((t.time(0) - a).abs() < 1e-9);
        prop_assert!((t.time((n - 1) as usize) - b).abs() < 1e-9);
    }
}

//! Telemetry is observational: an enabled [`Telemetry`] registry must
//! leave every simulation outcome bit-identical to an unmetered run.
//!
//! This is the telemetry layer's analog of `trace_determinism.rs`: the
//! registry records wall-clock spans and host-side counters, so it runs
//! strictly *outside* the virtual-time engine — figures produced with
//! `--telemetry` are the *same* figures. These tests pin that guarantee
//! for the fig5 measurement path, the fault-recovery machinery and the
//! direct (Hagerup) simulator.

use dls_core::Technique;
use dls_faults::FaultPlan;
use dls_hagerup::DirectSimulator;
use dls_metrics::OverheadModel;
use dls_msgsim::{simulate, simulate_metered, SimSpec};
use dls_platform::{LinkSpec, Platform};
use dls_telemetry::Telemetry;
use dls_trace::Tracer;
use dls_workload::Workload;

fn fig_spec(technique: Technique, n: u64, p: usize) -> SimSpec {
    let workload = Workload::exponential(n, 1.0).unwrap();
    let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
    SimSpec::new(technique, workload, platform)
        .with_overhead(OverheadModel::PostHocTotal { h: 0.5 })
}

/// Runs `spec` unmetered and metered and asserts the outcomes are equal
/// in every field (SimOutcome derives PartialEq; equality here means
/// bit-identity up to NaN, which no outcome contains).
fn assert_telemetry_is_observational(spec: &SimSpec, seed: u64) {
    let plain = simulate(spec, seed).unwrap();
    let telemetry = Telemetry::enabled();
    let metered = simulate_metered(spec, seed, &Tracer::disabled(), &telemetry).unwrap();
    assert_eq!(plain, metered, "enabled telemetry changed the outcome");
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("msgsim.simulate_calls"), Some(1));
    assert!(
        snap.counter("msgsim.events").unwrap_or(0) > 0,
        "the metered run must actually have recorded engine events"
    );
    // Spot-check bit-identity on the headline scalars.
    assert_eq!(plain.makespan.to_bits(), metered.makespan.to_bits());
    assert_eq!(plain.average_wasted().to_bits(), metered.average_wasted().to_bits());
}

#[test]
fn telemetry_leaves_fig_campaign_outcomes_bit_identical() {
    // One representative per scheduling family (static, self, decreasing,
    // factoring, moment-aware): the fig5–fig8 measurement paths.
    for technique in [
        Technique::Stat,
        Technique::SS,
        Technique::Tss { first: None, last: None },
        Technique::Fac2,
        Technique::Bold,
    ] {
        assert_telemetry_is_observational(&fig_spec(technique, 1_024, 4), 0xD15);
    }
}

#[test]
fn telemetry_leaves_fault_recovery_outcomes_bit_identical() {
    // Fail-stop + lossy links exercise the watchdog/reassignment path, the
    // retry timers and the dead-letter handling; the registry additionally
    // tallies dropped sends here, and must still not perturb the run.
    let est = 1_024.0 / 4.0;
    let plan = FaultPlan::none().with_fail_stop(0, 0.25 * est).with_loss(0.02);
    for technique in [Technique::Fac2, Technique::SS] {
        let spec = fig_spec(technique, 1_024, 4).with_faults(plan.clone());
        assert_telemetry_is_observational(&spec, 0xFA_17);
    }
}

#[test]
fn telemetry_leaves_hagerup_outcomes_bit_identical() {
    let overhead = OverheadModel::InDynamics { h: 0.3 };
    let workload = Workload::exponential(2_048, 1.0).unwrap();
    let platform = Platform::homogeneous_star("pe", 8, 1.0, LinkSpec::negligible());
    for technique in [Technique::Gss { min_chunk: 1 }, Technique::Fac, Technique::Bold] {
        let spec =
            SimSpec::new(technique, workload.clone(), platform.clone()).with_overhead(overhead);
        let setup = spec.loop_setup();
        let tasks = spec.workload.generate(0xB01D);
        let sim = DirectSimulator::new(8, overhead);
        let plain = sim.run(technique, &setup, &tasks).unwrap();
        let telemetry = Telemetry::enabled();
        let metered =
            sim.run_metered(technique, &setup, &tasks, &Tracer::disabled(), &telemetry).unwrap();
        assert_eq!(plain, metered, "{technique:?}: enabled telemetry changed the outcome");
        assert_eq!(plain.makespan.to_bits(), metered.makespan.to_bits());
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("hagerup.run_calls"), Some(1));
        assert_eq!(snap.counter("hagerup.chunks"), Some(metered.chunks));
    }
}

#[test]
fn tracer_and_telemetry_compose_without_perturbing_the_run() {
    // Both observability layers enabled at once — the combination the
    // `repro trace` command uses — must still be bit-identical.
    let spec = fig_spec(Technique::Fac2, 1_024, 4);
    let plain = simulate(&spec, 0xC0).unwrap();
    let (tracer, recorder) = Tracer::ring(1 << 20);
    let telemetry = Telemetry::enabled();
    let both = simulate_metered(&spec, 0xC0, &tracer, &telemetry).unwrap();
    assert_eq!(plain, both, "tracer + telemetry together changed the outcome");
    assert!(!recorder.borrow().events().is_empty());
    assert!(telemetry.snapshot().counter("msgsim.events").unwrap_or(0) > 0);
}

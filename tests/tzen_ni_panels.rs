//! The TSS publication's Figure 7/8 had three panels: speedup Γ, degree of
//! scheduling overhead Θ and degree of load imbalance Λ. The paper
//! reproduces only the speedup panel; these tests exercise the other two
//! metrics end-to-end on the same experiment 1 configuration.

use dls_suite::dls_core::Technique;
use dls_suite::dls_metrics::OverheadModel;
use dls_suite::dls_msgsim::{simulate, SimSpec};
use dls_suite::dls_platform::{LinkSpec, Platform};
use dls_suite::dls_workload::Workload;

fn run(technique: Technique, p: usize, h: f64) -> dls_suite::dls_metrics::LoopMetrics {
    let workload = Workload::constant(100_000, 110e-6);
    let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
    let spec = SimSpec::new(technique, workload, platform)
        .with_overhead(OverheadModel::PostHocTotal { h });
    simulate(&spec, 0).unwrap().resource_split().metrics()
}

/// Γ + Θ + Λ ≤ p always; equality without contention (eq. 11–13).
#[test]
fn accounting_identity_holds() {
    for p in [8usize, 24, 72] {
        for technique in [
            Technique::SS,
            Technique::Css { k: 100_000 / p as u64 },
            Technique::Gss { min_chunk: 1 },
            Technique::Tss { first: None, last: None },
        ] {
            let m = run(technique, p, 2e-6);
            let total = m.accounted_processors();
            assert!(total <= p as f64 + 1e-6, "{technique} p={p}: Γ+Θ+Λ = {total}");
            assert!(total > 0.9 * p as f64, "{technique} p={p}: {total} too low");
            assert!(m.speedup > 0.0 && m.overhead_degree >= 0.0 && m.imbalance_degree >= 0.0);
        }
    }
}

/// Θ ranks techniques by scheduling-operation count: SS ≫ GSS(1) > CSS —
/// the ordering of the original publication's overhead panel.
#[test]
fn overhead_degree_ordering_matches_the_original_panel() {
    let p = 72;
    let h = 2e-6; // 2 µs per scheduling operation
    let ss = run(Technique::SS, p, h);
    let gss = run(Technique::Gss { min_chunk: 1 }, p, h);
    let css = run(Technique::Css { k: 100_000 / p as u64 }, p, h);
    assert!(
        ss.overhead_degree > 10.0 * gss.overhead_degree,
        "SS Θ = {} vs GSS Θ = {}",
        ss.overhead_degree,
        gss.overhead_degree
    );
    assert!(gss.overhead_degree > css.overhead_degree);
}

/// Λ ranks them the other way: on a decreasing ramp, STAT's equal-count
/// blocks carry unequal work and its waiting time dominates, while TSS's
/// decreasing chunks absorb the ramp.
#[test]
fn imbalance_degree_reflects_chunk_granularity() {
    let workload = dls_suite::dls_workload::Workload::new(
        10_000,
        dls_suite::dls_workload::TimeModel::LinearDecreasing { first: 2e-3, last: 1e-5 },
    )
    .unwrap();
    let platform = Platform::homogeneous_star("pe", 16, 1.0, LinkSpec::negligible());
    let metrics = |t: Technique| {
        let spec = SimSpec::new(t, workload.clone(), platform.clone());
        simulate(&spec, 0).unwrap().resource_split().metrics()
    };
    let stat = metrics(Technique::Stat);
    let tss = metrics(Technique::Tss { first: None, last: None });
    assert!(
        stat.imbalance_degree > 3.0 * tss.imbalance_degree.max(0.01),
        "STAT Λ = {} vs TSS Λ = {}",
        stat.imbalance_degree,
        tss.imbalance_degree
    );
    assert!(tss.speedup > stat.speedup);
}

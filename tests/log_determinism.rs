//! The structured logger and the progress tracker are observational: a
//! campaign run with both attached must produce bit-identical results —
//! and a byte-identical CSV — to the same campaign run without them.
//!
//! This is the logging layer's analog of `telemetry_determinism.rs`. The
//! logger records host-side events (cell starts, heartbeats, quarantines)
//! and the progress tracker counts completed runs on the host clock; both
//! run strictly outside the virtual-time engine, so figures produced with
//! `--log` are the *same* figures.

use dls_suite::dls_repro::hagerup_exp::{run_figure_resilient, HagerupConfig};
use dls_suite::dls_repro::report::{format_csv, wasted_rows};
use dls_suite::dls_repro::runner::{ExecContext, Progress};
use dls_telemetry::{Level, Logger, Telemetry};

fn small_fig5() -> HagerupConfig {
    let mut cfg = HagerupConfig::paper(1_024, 3);
    cfg.threads = 2;
    cfg.seed = 0x0106;
    cfg.pes = vec![2, 4];
    cfg.techniques = vec!["SS".parse().unwrap(), "FAC".parse().unwrap()];
    cfg
}

#[test]
fn logger_and_progress_leave_fig5_results_bit_identical() {
    let cfg = small_fig5();
    let plain =
        run_figure_resilient(&cfg, &Telemetry::disabled(), &ExecContext::transient()).unwrap();

    let logger = Logger::enabled();
    let progress = Progress::new();
    let ctx = ExecContext::transient().with_logger(logger.clone()).with_progress(progress.clone());
    let logged = run_figure_resilient(&cfg, &Telemetry::enabled(), &ctx).unwrap();

    assert_eq!(plain.len(), logged.len());
    for (a, b) in plain.iter().zip(&logged) {
        assert_eq!((a.technique.as_str(), a.p), (b.technique.as_str(), b.p));
        assert_eq!(a.msgsim.to_bits(), b.msgsim.to_bits(), "{} p={}", a.technique, a.p);
        assert_eq!(a.replica.to_bits(), b.replica.to_bits(), "{} p={}", a.technique, a.p);
    }
    let (headers_a, rows_a) = wasted_rows(&plain);
    let (headers_b, rows_b) = wasted_rows(&logged);
    assert_eq!(
        format_csv(&headers_a, &rows_a),
        format_csv(&headers_b, &rows_b),
        "CSV must be byte-identical with the logger active"
    );

    // The observers really observed: the campaign logged its cells and a
    // completion heartbeat, and the progress tracker drained to done.
    let records = logger.recent();
    assert!(
        records.iter().any(|r| r.level == Level::Info && r.message == "cell start"),
        "expected cell-start events, got {} record(s)",
        records.len()
    );
    assert!(records.iter().any(|r| r.message == "heartbeat"));
    let snap = progress.snapshot();
    assert!(snap.total > 0 && snap.done == snap.total, "{snap:?}");

    // And the JSONL dump is valid line-delimited JSON with the reserved keys.
    for line in logger.to_jsonl().lines() {
        let v: serde::Value = serde_json::from_str(line).unwrap();
        for key in ["seq", "t_ms", "level", "target", "msg"] {
            assert!(v.get(key).is_some(), "missing `{key}` in {line}");
        }
    }
}

//! Tracing is observational: an enabled [`Tracer`] must leave every
//! simulation outcome bit-identical to an untraced run, and the Chrome
//! exporter's output must stay stable for a pinned scenario.
//!
//! The first property is the tentpole guarantee of the observability
//! layer — figures produced with `--trace` are the *same* figures. The
//! golden file pins both the exporter's JSON shape and the traced event
//! stream of a tiny deterministic run; regenerate it deliberately with
//! `BLESS_GOLDEN=1 cargo test -p dls-suite --test trace_determinism`.

use dls_core::Technique;
use dls_faults::FaultPlan;
use dls_hagerup::DirectSimulator;
use dls_metrics::OverheadModel;
use dls_msgsim::{simulate, simulate_traced, SimSpec};
use dls_platform::{LinkSpec, Platform};
use dls_trace::{chrome::chrome_trace_json, Tracer};
use dls_workload::Workload;

fn fig_spec(technique: Technique, n: u64, p: usize) -> SimSpec {
    let workload = Workload::exponential(n, 1.0).unwrap();
    let platform = Platform::homogeneous_star("pe", p, 1.0, LinkSpec::negligible());
    SimSpec::new(technique, workload, platform)
        .with_overhead(OverheadModel::PostHocTotal { h: 0.5 })
}

/// Runs `spec` untraced and traced and asserts the outcomes are equal in
/// every field (SimOutcome derives PartialEq; the f64s come out of the
/// same arithmetic, so equality here means bit-identity up to NaN, which
/// no outcome contains).
fn assert_tracing_is_observational(spec: &SimSpec, seed: u64) {
    let plain = simulate(spec, seed).unwrap();
    let (tracer, recorder) = Tracer::ring(1 << 20);
    let traced = simulate_traced(spec, seed, &tracer).unwrap();
    assert_eq!(plain, traced, "enabled tracer changed the outcome");
    assert!(
        !recorder.borrow().events().is_empty(),
        "the traced run must actually have recorded events"
    );
    // Spot-check bit-identity on the headline scalar.
    assert_eq!(plain.makespan.to_bits(), traced.makespan.to_bits());
}

#[test]
fn tracer_leaves_fig_campaign_outcomes_bit_identical() {
    // One representative per scheduling family (static, self, decreasing,
    // factoring, moment-aware): the fig5–fig8 measurement paths.
    for technique in [
        Technique::Stat,
        Technique::SS,
        Technique::Tss { first: None, last: None },
        Technique::Fac2,
        Technique::Bold,
    ] {
        assert_tracing_is_observational(&fig_spec(technique, 1_024, 4), 0xD15);
    }
}

#[test]
fn tracer_leaves_fault_recovery_outcomes_bit_identical() {
    // Fail-stop + lossy links exercise the watchdog/reassignment path, the
    // retry timers and the dead-letter handling — every traced hook in the
    // recovery machinery.
    let est = 1_024.0 / 4.0;
    let plan = FaultPlan::none().with_fail_stop(0, 0.25 * est).with_loss(0.02);
    for technique in [Technique::Fac2, Technique::SS] {
        let spec = fig_spec(technique, 1_024, 4).with_faults(plan.clone());
        assert_tracing_is_observational(&spec, 0xFA_17);
    }
}

#[test]
fn tracer_leaves_hagerup_outcomes_bit_identical() {
    let overhead = OverheadModel::InDynamics { h: 0.3 };
    let workload = Workload::exponential(2_048, 1.0).unwrap();
    let platform = Platform::homogeneous_star("pe", 8, 1.0, LinkSpec::negligible());
    for technique in [Technique::Gss { min_chunk: 1 }, Technique::Fac, Technique::Bold] {
        let spec =
            SimSpec::new(technique, workload.clone(), platform.clone()).with_overhead(overhead);
        let setup = spec.loop_setup();
        let tasks = spec.workload.generate(0xB01D);
        let sim = DirectSimulator::new(8, overhead);
        let plain = sim.run(technique, &setup, &tasks).unwrap();
        let (tracer, recorder) = Tracer::ring(1 << 20);
        let traced = sim.run_traced(technique, &setup, &tasks, &tracer).unwrap();
        assert_eq!(plain, traced, "{technique:?}: enabled tracer changed the outcome");
        assert!(!recorder.borrow().events().is_empty());
    }
}

#[test]
fn chrome_export_of_tiny_tss_run_matches_golden() {
    // 2 PEs, 8 constant 1-second tasks, h = 0.25 s in-dynamics: every
    // timestamp is an exact binary fraction, so the run — and therefore
    // the exported JSON — is reproducible to the byte on any platform.
    let overhead = OverheadModel::InDynamics { h: 0.25 };
    let workload = Workload::constant(8, 1.0);
    let platform = Platform::homogeneous_star("pe", 2, 1.0, LinkSpec::negligible());
    let technique = Technique::Tss { first: None, last: None };
    let spec = SimSpec::new(technique, workload, platform).with_overhead(overhead);
    let setup = spec.loop_setup();
    let tasks = spec.workload.generate(1);
    let (tracer, recorder) = Tracer::ring(1 << 10);
    DirectSimulator::new(2, overhead).run_traced(technique, &setup, &tasks, &tracer).unwrap();
    let json = chrome_trace_json(&recorder.borrow().to_vec(), 2, "golden-tss-2pe");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_tss_2pe.trace.json");
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing: run once with BLESS_GOLDEN=1 to create it");
    assert_eq!(json, golden, "Chrome exporter output changed; bless deliberately if intended");
}
